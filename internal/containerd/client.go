package containerd

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"wasmcontainers/internal/core"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/oci"
	"wasmcontainers/internal/runtimes"
	"wasmcontainers/internal/simos"
	"wasmcontainers/internal/wasi"
	"wasmcontainers/internal/wasm/cache"
)

// Version is the simulated containerd version (Table I).
const Version = "1.7.1"

// RuntimeHandler selects the execution path for a container, mirroring
// Kubernetes RuntimeClass handlers.
type RuntimeHandler string

// The handlers the paper evaluates.
const (
	// HandlerRunc is Kubernetes' default: shim-runc-v2 + runC.
	HandlerRunc RuntimeHandler = "runc"
	// HandlerCrun is shim-runc-v2 + crun (native containers).
	HandlerCrun RuntimeHandler = "crun"
	// HandlerCrunWAMR is the paper's contribution: crun with embedded WAMR.
	HandlerCrunWAMR RuntimeHandler = "crun-wamr"
	// Other engines embedded in crun (Figure 3/4 baselines).
	HandlerCrunWasmtime RuntimeHandler = "crun-wasmtime"
	HandlerCrunWasmer   RuntimeHandler = "crun-wasmer"
	HandlerCrunWasmEdge RuntimeHandler = "crun-wasmedge"
	// HandlerYouki is shim-runc-v2 + youki.
	HandlerYouki RuntimeHandler = "youki"
	// runwasi shims (Figure 5 baselines): Wasm directly from containerd.
	HandlerShimWasmtime RuntimeHandler = "io.containerd.wasmtime.v1"
	HandlerShimWasmEdge RuntimeHandler = "io.containerd.wasmedge.v1"
	HandlerShimWasmer   RuntimeHandler = "io.containerd.wasmer.v1"
)

// AllHandlers lists every handler in the benchmark order of Figure 10.
func AllHandlers() []RuntimeHandler {
	return []RuntimeHandler{
		HandlerCrunWAMR, HandlerCrunWasmtime, HandlerCrunWasmer, HandlerCrunWasmEdge,
		HandlerShimWasmtime, HandlerShimWasmEdge, HandlerShimWasmer,
		HandlerCrun, HandlerRunc,
	}
}

// IsRunwasi reports whether the handler is a runwasi shim.
func (h RuntimeHandler) IsRunwasi() bool {
	switch h {
	case HandlerShimWasmtime, HandlerShimWasmEdge, HandlerShimWasmer:
		return true
	}
	return false
}

// IsWasm reports whether the handler executes WebAssembly.
func (h RuntimeHandler) IsWasm() bool {
	switch h {
	case HandlerCrunWAMR, HandlerCrunWasmtime, HandlerCrunWasmer, HandlerCrunWasmEdge:
		return true
	}
	return h.IsRunwasi()
}

// engineFor maps a handler to its engine profile.
func (h RuntimeHandler) engineFor() (engine.Profile, bool) {
	switch h {
	case HandlerCrunWAMR:
		return engine.WAMR, true
	case HandlerCrunWasmtime, HandlerShimWasmtime:
		return engine.Wasmtime, true
	case HandlerCrunWasmer, HandlerShimWasmer:
		return engine.Wasmer, true
	case HandlerCrunWasmEdge, HandlerShimWasmEdge:
		return engine.WasmEdge, true
	}
	return engine.Profile{}, false
}

// Per-container daemon bookkeeping and shim model constants.
const (
	// daemonGrowthPerContainer is containerd daemon heap growth per managed
	// container (system slice; `free` view only).
	daemonGrowthPerContainer = 358 * kib
	// runcShimPrivateBytes is the resident size of one shim-runc-v2 process.
	runcShimPrivateBytes = 461 * kib
	// runcShimTaskLockHold is the task-service serialization for the
	// shim-runc-v2 path (cheap: the shim is reused per pod and the heavy
	// work happens outside the lock).
	runcShimTaskLockHold = 2 * time.Millisecond
	// pauseBytes is the pod pause container (charged in the pod cgroup by
	// the CRI layer; defined here for reuse).
	PauseContainerBytes = 307 * kib
)

// StartCost is the simulated cost of one containerd task start.
type StartCost struct {
	FixedDelay   time.Duration
	CPUWork      time.Duration
	TaskLockHold time.Duration
}

// TaskReport is the outcome of Task.Start.
type TaskReport struct {
	Cost         StartCost
	Pid          int
	ExitCode     uint32
	Stdout       string
	Instructions uint64
	Handler      string
}

// Client is a containerd instance bound to one node.
type Client struct {
	mu     sync.Mutex
	node   *simos.Node
	images *ImageStore
	snap   *Snapshotter
	daemon *simos.Process

	lowlevel map[RuntimeHandler]oci.Runtime
	ctrs     map[string]*Container
	// modCache is the node-level compiled-module cache: every runwasi shim
	// and crun handler this client constructs resolves module digests against
	// it, so a module binary compiles once per node regardless of how many
	// containers (or which runtime path) run it.
	modCache *cache.Cache
}

// NewClient starts a containerd instance on the node.
func NewClient(node *simos.Node, images *ImageStore) (*Client, error) {
	daemon, err := node.Spawn("containerd", "/system.slice/containerd")
	if err != nil {
		return nil, err
	}
	return &Client{
		node:     node,
		images:   images,
		snap:     NewSnapshotter(),
		daemon:   daemon,
		lowlevel: make(map[RuntimeHandler]oci.Runtime),
		ctrs:     make(map[string]*Container),
		modCache: cache.New(engine.DefaultModuleCacheBytes),
	}, nil
}

// Node returns the client's node.
func (c *Client) Node() *simos.Node { return c.node }

// Images returns the image store.
func (c *Client) Images() *ImageStore { return c.images }

// runtimeFor lazily constructs the low-level runtime behind a handler.
func (c *Client) runtimeFor(h RuntimeHandler) (oci.Runtime, error) {
	if rt, ok := c.lowlevel[h]; ok {
		return rt, nil
	}
	var rt oci.Runtime
	switch h {
	case HandlerRunc:
		rt = runtimes.NewRunC(c.node)
	case HandlerCrun:
		rt = core.New(core.Config{Node: c.node, ModuleCache: c.modCache})
	case HandlerYouki:
		rt = runtimes.NewYouki(c.node, engine.WasmEdge)
	case HandlerCrunWAMR, HandlerCrunWasmtime, HandlerCrunWasmer, HandlerCrunWasmEdge:
		prof, _ := h.engineFor()
		rt = core.New(core.Config{Node: c.node, Engine: prof, ModuleCache: c.modCache})
	default:
		return nil, fmt.Errorf("containerd: no low-level runtime for handler %q", h)
	}
	c.lowlevel[h] = rt
	return rt, nil
}

// Container is a containerd container record.
type Container struct {
	ID      string
	Image   *Image
	Handler RuntimeHandler
	Spec    *oci.Spec
	Bundle  *oci.Bundle
	client  *Client
	task    *Task
}

// ContainerOpts customizes container creation.
type ContainerOpts struct {
	// CgroupsPath places the container's processes (default
	// "/containerd/<id>").
	CgroupsPath string
	// ExtraEnv and ExtraArgs extend the image entrypoint.
	ExtraEnv  []string
	ExtraArgs []string
}

// CreateContainer pulls the image, prepares a snapshot, and registers the
// container with the chosen runtime handler.
func (c *Client) CreateContainer(id, imageName string, handler RuntimeHandler, opts ContainerOpts) (*Container, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ctrs[id]; ok {
		return nil, fmt.Errorf("containerd: container %q exists", id)
	}
	img, first, err := c.images.Pull(imageName)
	if err != nil {
		return nil, err
	}
	if first {
		// Unpacked layers enter the page cache once per node.
		c.daemon.ChargeCache(img.SizeBytes)
	}
	rootfs, err := c.snap.Prepare(id, img)
	if err != nil {
		return nil, err
	}
	if opts.CgroupsPath == "" {
		opts.CgroupsPath = "/containerd/" + id
	}
	spec := SpecForImage(img, opts.CgroupsPath, opts.ExtraEnv, opts.ExtraArgs)
	bundle, err := oci.NewBundle("/run/containerd/"+id, spec, rootfs)
	if err != nil {
		return nil, err
	}
	ctr := &Container{ID: id, Image: img, Handler: handler, Spec: spec, Bundle: bundle, client: c}
	c.ctrs[id] = ctr
	// Daemon bookkeeping grows per container.
	if err := c.daemon.MapPrivate(daemonGrowthPerContainer); err != nil {
		return nil, err
	}
	return ctr, nil
}

// Container looks up a container by ID.
func (c *Client) Container(id string) (*Container, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr, ok := c.ctrs[id]
	return ctr, ok
}

// Containers lists container IDs.
func (c *Client) Containers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.ctrs))
	for id := range c.ctrs {
		out = append(out, id)
	}
	return out
}

// Task is the running incarnation of a container, managed through a shim.
type Task struct {
	ctr      *Container
	report   *TaskReport
	started  bool
	shimProc *simos.Process // shim-runc-v2 or runwasi shim system-side proc
	podProc  *simos.Process // runwasi container process (pod cgroup)
	runtime  oci.Runtime    // non-nil on the shim-runc-v2 path
}

// NewTask creates the task (shim selection happens here).
func (ctr *Container) NewTask() (*Task, error) {
	if ctr.task != nil {
		return nil, fmt.Errorf("containerd: task for %q exists", ctr.ID)
	}
	t := &Task{ctr: ctr}
	ctr.task = t
	return t, nil
}

// Task returns the container's task, if any.
func (ctr *Container) Task() *Task { return ctr.task }

// Start launches the container through its shim and returns the simulated
// cost plus real execution telemetry.
func (t *Task) Start() (*TaskReport, error) {
	if t.started {
		return nil, fmt.Errorf("containerd: task %q already started", t.ctr.ID)
	}
	var rep *TaskReport
	var err error
	if t.ctr.Handler.IsRunwasi() {
		rep, err = t.startRunwasi()
	} else {
		rep, err = t.startRuncShim()
	}
	if err != nil {
		return nil, err
	}
	t.started = true
	t.report = rep
	return rep, nil
}

// startRuncShim is the shim-runc-v2 path: a lightweight shim process drives
// the low-level OCI runtime (crun/runC/youki).
func (t *Task) startRuncShim() (*TaskReport, error) {
	c := t.ctr.client
	rt, err := c.runtimeFor(t.ctr.Handler)
	if err != nil {
		return nil, err
	}
	shim, err := c.node.Spawn("containerd-shim-runc-v2["+t.ctr.ID+"]", "/system.slice/containerd-shims")
	if err != nil {
		return nil, err
	}
	if err := shim.MapPrivate(runcShimPrivateBytes); err != nil {
		shim.Exit()
		return nil, err
	}
	// Writable layer + logs enter the page cache, attributed system-side.
	shim.ChargeCache(t.ctr.Image.ScratchBytesPerContainer)
	t.shimProc = shim
	t.runtime = rt

	if err := rt.Create(t.ctr.ID, t.ctr.Bundle); err != nil {
		shim.Exit()
		return nil, err
	}
	rep, err := rt.Start(t.ctr.ID)
	if err != nil {
		shim.Exit()
		return nil, err
	}
	return &TaskReport{
		Cost: StartCost{
			FixedDelay:   rep.Cost.FixedDelay,
			CPUWork:      rep.Cost.CPUWork,
			TaskLockHold: runcShimTaskLockHold,
		},
		Pid:          rep.Pid,
		ExitCode:     rep.ExitCode,
		Stdout:       rep.Stdout,
		Instructions: rep.Instructions,
		Handler:      string(t.ctr.Handler) + "/" + rep.Handler,
	}, nil
}

// startRunwasi is the runwasi path: the shim itself hosts the Wasm runtime
// and executes the module, bypassing low-level OCI runtimes entirely.
func (t *Task) startRunwasi() (*TaskReport, error) {
	c := t.ctr.client
	prof, ok := t.ctr.Handler.engineFor()
	if !ok {
		return nil, fmt.Errorf("containerd: handler %q has no engine", t.ctr.Handler)
	}
	eng := engine.NewWithCache(prof, c.modCache)
	spec := t.ctr.Spec
	modulePath := spec.Process.Args[0]
	bin, err := t.ctr.Bundle.Rootfs.ReadFile(modulePath)
	if err != nil {
		return nil, fmt.Errorf("containerd: runwasi: reading module %s: %w", modulePath, err)
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		return nil, fmt.Errorf("containerd: runwasi: %w", err)
	}
	var stdout bytes.Buffer
	res, err := eng.Run(cm, wasi.Config{
		Args:   spec.Process.Args,
		Env:    spec.Process.Env,
		Stdout: &stdout,
		Stderr: &stdout,
		Preopens: []wasi.Preopen{
			{GuestPath: "/", FS: t.ctr.Bundle.Rootfs, HostPath: "/"},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("containerd: runwasi: %w", err)
	}

	// Copy-on-write guest memory: the shim's private charge covers only
	// dirtied pages; clean pages alias the module's shared baseline image.
	podBytes, sysBytes := eng.ShimFootprint(res.GuestPrivateBytes)
	podProc, err := c.node.Spawn(prof.ShimBinaryName+"["+t.ctr.ID+"]", spec.Linux.CgroupsPath)
	if err != nil {
		return nil, err
	}
	if err := podProc.MapPrivate(podBytes); err != nil {
		podProc.Exit()
		return nil, err
	}
	podProc.MapShared(prof.ShimBinaryName, prof.ShimBinaryBytes)
	// One node-wide copy of the compiled-module artifact and of the baseline
	// memory image, shared by every shim running the same module digest.
	podProc.MapShared(fmt.Sprintf("wasm-code:%x", cm.Digest[:8]), cm.CodeBytes())
	if b := cm.BaselineBytes(); b > 0 {
		podProc.MapShared(fmt.Sprintf("wasm-data:%x", cm.Digest[:8]), b)
	}
	t.podProc = podProc

	sysProc, err := c.node.Spawn(prof.ShimBinaryName+"-mgr["+t.ctr.ID+"]", "/system.slice/containerd-shims")
	if err != nil {
		podProc.Exit()
		return nil, err
	}
	if sysBytes > 0 {
		if err := sysProc.MapPrivate(sysBytes); err != nil {
			podProc.Exit()
			sysProc.Exit()
			return nil, err
		}
	}
	sysProc.ChargeCache(t.ctr.Image.ScratchBytesPerContainer)
	t.shimProc = sysProc

	delay, cpu, lock := eng.ShimStartCost(res.SimulatedExecTime)
	return &TaskReport{
		Cost:         StartCost{FixedDelay: delay, CPUWork: cpu, TaskLockHold: lock},
		Pid:          podProc.PID,
		ExitCode:     res.ExitCode,
		Stdout:       stdout.String(),
		Instructions: res.Instructions,
		Handler:      "runwasi:" + prof.Name,
	}, nil
}

// Report returns the start report (nil before Start).
func (t *Task) Report() *TaskReport { return t.report }

// Kill stops the container's processes.
func (t *Task) Kill() error {
	if !t.started {
		return fmt.Errorf("containerd: task %q not started", t.ctr.ID)
	}
	if t.runtime != nil {
		if err := t.runtime.Kill(t.ctr.ID, 9); err != nil {
			return err
		}
	}
	if t.podProc != nil {
		t.podProc.Exit()
		t.podProc = nil
	}
	if t.shimProc != nil {
		t.shimProc.Exit()
		t.shimProc = nil
	}
	t.started = false
	return nil
}

// Delete removes a stopped task and its container resources.
func (c *Client) Delete(id string) error {
	c.mu.Lock()
	ctr, ok := c.ctrs[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("containerd: container %q not found", id)
	}
	if ctr.task != nil && ctr.task.started {
		return fmt.Errorf("containerd: container %q still running", id)
	}
	if ctr.task != nil && ctr.task.runtime != nil {
		if err := ctr.task.runtime.Delete(id); err != nil {
			return err
		}
	}
	c.snap.Remove(id)
	c.mu.Lock()
	delete(c.ctrs, id)
	c.mu.Unlock()
	c.daemon.UnmapPrivate(daemonGrowthPerContainer)
	return nil
}

// PrePull fetches an image ahead of container creation so its layer cache is
// charged before measurements begin (benchmarks measure steady-state
// per-container cost, with images already present, as the paper does).
func (c *Client) PrePull(imageName string) error {
	img, first, err := c.images.Pull(imageName)
	if err != nil {
		return err
	}
	if first {
		c.daemon.ChargeCache(img.SizeBytes)
	}
	return nil
}

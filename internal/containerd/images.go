// Package containerd models the high-level container runtime: an image
// store, a snapshotter, a task service with its serialization point, and the
// two shim families the paper benchmarks — containerd-shim-runc-v2 (which
// drives the low-level OCI runtimes crun/runC/youki) and the runwasi shims
// (containerd-shim-wasmtime/-wasmedge/-wasmer) that execute WebAssembly
// directly from containerd, bypassing low-level runtimes.
package containerd

import (
	"fmt"
	"sync"

	"wasmcontainers/internal/oci"
	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/workloads"
)

// Image is a container image with its unpacked root filesystem.
type Image struct {
	Name string
	// Rootfs holds the image's files.
	Rootfs *vfs.FS
	// SizeBytes is the compressed image size (page cache charged once per
	// node when pulled).
	SizeBytes int64
	// ScratchBytesPerContainer is the per-container writable-layer, log, and
	// metadata overhead (page cache, visible to `free` only).
	ScratchBytesPerContainer int64
	// Wasm marks OCI "compat" Wasm images.
	Wasm bool
	// Entrypoint is the default process args.
	Entrypoint []string
}

const (
	kib = int64(1024)
	mib = 1024 * kib
)

// ImageStore is a registry + local content store.
type ImageStore struct {
	mu     sync.Mutex
	images map[string]*Image
	pulled map[string]bool
}

// NewImageStore creates a store pre-populated with the benchmark images.
func NewImageStore() (*ImageStore, error) {
	s := &ImageStore{
		images: make(map[string]*Image),
		pulled: make(map[string]bool),
	}
	// Wasm workload images, one per workload.
	for _, name := range workloads.Names() {
		bin, err := workloads.Binary(name)
		if err != nil {
			return nil, err
		}
		img, err := BuildWasmImage(name+":wasm", "/app.wasm", bin)
		if err != nil {
			return nil, err
		}
		s.images[img.Name] = img
	}
	// The Python baseline image.
	img, err := BuildPythonImage("python-minimal-service:3.11", "/app/app.py", workloads.MinimalServicePy)
	if err != nil {
		return nil, err
	}
	s.images[img.Name] = img
	return s, nil
}

// BuildWasmImage assembles an OCI "compat" Wasm image holding one module.
func BuildWasmImage(name, modulePath string, moduleBin []byte) (*Image, error) {
	fsys := vfs.New()
	if err := fsys.WriteFile(modulePath, moduleBin); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll("/tmp"); err != nil {
		return nil, err
	}
	return &Image{
		Name:   name,
		Rootfs: fsys,
		// Wasm images are tiny: essentially the module itself.
		SizeBytes:                int64(len(moduleBin)) + 64*kib,
		ScratchBytesPerContainer: 307 * kib,
		Wasm:                     true,
		Entrypoint:               []string{modulePath},
	}, nil
}

// BuildPythonImage assembles a python:3.11-slim-style image with one script.
func BuildPythonImage(name, scriptPath, script string) (*Image, error) {
	fsys := vfs.New()
	if err := fsys.MkdirAll("/usr/bin"); err != nil {
		return nil, err
	}
	if err := fsys.WriteFile("/usr/bin/python3", []byte("#!interpreter pylite\n")); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll("/app"); err != nil {
		return nil, err
	}
	if err := fsys.WriteFile(scriptPath, []byte(script)); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll("/tmp"); err != nil {
		return nil, err
	}
	return &Image{
		Name:      name,
		Rootfs:    fsys,
		SizeBytes: 45 * mib, // python:3.11-slim compressed size
		// Bigger writable layer: interpreter pyc caches, logs.
		ScratchBytesPerContainer: 563 * kib,
		Entrypoint:               []string{"python3", scriptPath},
	}, nil
}

// Add registers a custom image.
func (s *ImageStore) Add(img *Image) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.images[img.Name] = img
}

// Pull fetches an image; the returned bool is true on first pull (when the
// layer cache must be charged).
func (s *ImageStore) Pull(name string) (*Image, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.images[name]
	if !ok {
		return nil, false, fmt.Errorf("containerd: image %q not found", name)
	}
	first := !s.pulled[name]
	s.pulled[name] = true
	return img, first, nil
}

// List returns all image names.
func (s *ImageStore) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.images))
	for name := range s.images {
		out = append(out, name)
	}
	return out
}

// Snapshotter materializes container root filesystems from images
// (overlayfs-style: the image rootfs is cloned per container).
type Snapshotter struct {
	mu    sync.Mutex
	snaps map[string]*vfs.FS
}

// NewSnapshotter creates an empty snapshotter.
func NewSnapshotter() *Snapshotter {
	return &Snapshotter{snaps: make(map[string]*vfs.FS)}
}

// Prepare clones the image rootfs for a container.
func (s *Snapshotter) Prepare(key string, img *Image) (*vfs.FS, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.snaps[key]; ok {
		return nil, fmt.Errorf("containerd: snapshot %q exists", key)
	}
	clone := vfs.New()
	if err := vfs.CopyTree(clone, "/", img.Rootfs, "/"); err != nil {
		return nil, err
	}
	s.snaps[key] = clone
	return clone, nil
}

// Remove deletes a snapshot.
func (s *Snapshotter) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.snaps, key)
}

// Count returns the number of active snapshots.
func (s *Snapshotter) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps)
}

// SpecForImage builds an OCI spec running the image's entrypoint in the
// given pod cgroup.
func SpecForImage(img *Image, cgroupsPath string, extraEnv []string, extraArgs []string) *oci.Spec {
	args := append(append([]string(nil), img.Entrypoint...), extraArgs...)
	annotations := map[string]string{}
	if img.Wasm {
		annotations[oci.WasmVariantAnnotation] = "compat"
	}
	return &oci.Spec{
		Version: oci.SpecVersion,
		Process: oci.Process{
			Args: args,
			Env:  append([]string{"PATH=/usr/bin"}, extraEnv...),
			Cwd:  "/",
		},
		Root:        oci.Root{Path: "rootfs"},
		Annotations: annotations,
		Linux: &oci.Linux{
			CgroupsPath: cgroupsPath,
			Namespaces:  oci.DefaultNamespaces(),
		},
	}
}

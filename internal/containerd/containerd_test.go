package containerd

import (
	"strings"
	"testing"

	"wasmcontainers/internal/simos"
)

func testNode() *simos.Node {
	return simos.NewNode(simos.NodeConfig{
		Name: "t", RAMBytes: 32 * simos.GiB, Cores: 8,
		BaseSystemBytes: 512 * simos.MiB,
	})
}

func testClient(t *testing.T) *Client {
	t.Helper()
	images, err := NewImageStore()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(testNode(), images)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestImageStoreContents(t *testing.T) {
	images, err := NewImageStore()
	if err != nil {
		t.Fatal(err)
	}
	names := images.List()
	wantSome := []string{"minimal-service:wasm", "python-minimal-service:3.11", "file-io:wasm"}
	joined := strings.Join(names, ",")
	for _, w := range wantSome {
		if !strings.Contains(joined, w) {
			t.Errorf("missing image %s in %v", w, names)
		}
	}
	img, first, err := images.Pull("minimal-service:wasm")
	if err != nil || !first {
		t.Fatalf("first pull: %v first=%v", err, first)
	}
	if !img.Wasm || img.SizeBytes <= 0 {
		t.Fatalf("image meta: %+v", img)
	}
	if _, err := img.Rootfs.Stat("/app.wasm"); err != nil {
		t.Fatal("module missing from image rootfs")
	}
	_, second, _ := images.Pull("minimal-service:wasm")
	if second {
		t.Fatal("second pull flagged as first")
	}
	if _, _, err := images.Pull("ghost:latest"); err == nil {
		t.Fatal("unknown image pulled")
	}
}

func TestPythonImageLayout(t *testing.T) {
	images, _ := NewImageStore()
	img, _, err := images.Pull("python-minimal-service:3.11")
	if err != nil {
		t.Fatal(err)
	}
	if img.Wasm {
		t.Fatal("python image marked wasm")
	}
	if img.Entrypoint[0] != "python3" {
		t.Fatalf("entrypoint = %v", img.Entrypoint)
	}
	if _, err := img.Rootfs.Stat("/app/app.py"); err != nil {
		t.Fatal("script missing")
	}
	// Python image carries a much larger layer and scratch footprint.
	wasm, _, _ := images.Pull("minimal-service:wasm")
	if img.SizeBytes <= wasm.SizeBytes*10 {
		t.Fatalf("python image (%d) should dwarf wasm image (%d)", img.SizeBytes, wasm.SizeBytes)
	}
}

func TestSnapshotterIsolation(t *testing.T) {
	images, _ := NewImageStore()
	img, _, _ := images.Pull("minimal-service:wasm")
	s := NewSnapshotter()
	fs1, err := s.Prepare("c1", img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare("c1", img); err == nil {
		t.Fatal("duplicate snapshot accepted")
	}
	fs2, err := s.Prepare("c2", img)
	if err != nil {
		t.Fatal(err)
	}
	// Writable layers are independent.
	fs1.WriteFile("/scratch", []byte("one"))
	if _, err := fs2.Stat("/scratch"); err == nil {
		t.Fatal("snapshots share state")
	}
	if _, err := img.Rootfs.Stat("/scratch"); err == nil {
		t.Fatal("snapshot wrote through to the image")
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
	s.Remove("c1")
	if s.Count() != 1 {
		t.Fatal("remove failed")
	}
}

func TestRuncShimPathLifecycle(t *testing.T) {
	c := testClient(t)
	ctr, err := c.CreateContainer("c1", "minimal-service:wasm", HandlerCrunWAMR, ContainerOpts{
		CgroupsPath: "/kubepods/pod1/app",
	})
	if err != nil {
		t.Fatal(err)
	}
	task, err := ctr.NewTask()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctr.NewTask(); err == nil {
		t.Fatal("duplicate task accepted")
	}
	rep, err := task.Start()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stdout != "service ready\n" {
		t.Fatalf("stdout = %q", rep.Stdout)
	}
	if rep.Cost.TaskLockHold != runcShimTaskLockHold {
		t.Fatalf("lock hold = %v", rep.Cost.TaskLockHold)
	}
	if !strings.Contains(rep.Handler, "crun-wamr") {
		t.Fatalf("handler = %q", rep.Handler)
	}
	// The shim process exists in the system slice.
	shimCg, ok := c.Node().Cgroup("/system.slice/containerd-shims")
	if !ok || shimCg.MemoryCurrent() == 0 {
		t.Fatal("no shim memory in system slice")
	}
	// Double start fails; kill then delete succeeds.
	if _, err := task.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if err := c.Delete("c1"); err == nil {
		t.Fatal("delete of running container accepted")
	}
	if err := task.Kill(); err != nil {
		t.Fatal(err)
	}
	if shimCg.MemoryCurrent() != 0 {
		t.Fatal("shim memory leaked")
	}
	if err := c.Delete("c1"); err != nil {
		t.Fatal(err)
	}
	if len(c.Containers()) != 0 {
		t.Fatal("container still listed")
	}
}

func TestRunwasiPathLifecycle(t *testing.T) {
	c := testClient(t)
	ctr, err := c.CreateContainer("w1", "minimal-service:wasm", HandlerShimWasmtime, ContainerOpts{
		CgroupsPath: "/kubepods/podw/app",
	})
	if err != nil {
		t.Fatal(err)
	}
	task, _ := ctr.NewTask()
	rep, err := task.Start()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Handler != "runwasi:wasmtime" {
		t.Fatalf("handler = %q", rep.Handler)
	}
	if rep.Stdout != "service ready\n" {
		t.Fatalf("stdout = %q", rep.Stdout)
	}
	// runwasi serializes much longer on the task lock than shim-runc-v2.
	if rep.Cost.TaskLockHold <= runcShimTaskLockHold*10 {
		t.Fatalf("runwasi lock hold %v suspiciously small", rep.Cost.TaskLockHold)
	}
	// Pod cgroup holds the wasm host process memory.
	podCg, ok := c.Node().Cgroup("/kubepods/podw")
	if !ok || podCg.MemoryCurrent() == 0 {
		t.Fatal("no pod memory for runwasi container")
	}
	if err := task.Kill(); err != nil {
		t.Fatal(err)
	}
	if podCg.MemoryCurrent() != 0 {
		t.Fatal("runwasi pod memory leaked")
	}
}

func TestRunwasiRejectsNonWasmImage(t *testing.T) {
	c := testClient(t)
	ctr, err := c.CreateContainer("p1", "python-minimal-service:3.11", HandlerShimWasmtime, ContainerOpts{
		CgroupsPath: "/kubepods/podp/app",
	})
	if err != nil {
		t.Fatal(err)
	}
	task, _ := ctr.NewTask()
	if _, err := task.Start(); err == nil {
		t.Fatal("runwasi started a python image")
	}
}

func TestDaemonGrowthAccounting(t *testing.T) {
	c := testClient(t)
	daemonCg, _ := c.Node().Cgroup("/system.slice/containerd")
	base := daemonCg.MemoryCurrent()
	for i := 0; i < 5; i++ {
		id := string(rune('a' + i))
		if _, err := c.CreateContainer(id, "minimal-service:wasm", HandlerCrunWAMR, ContainerOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	grown := daemonCg.MemoryCurrent() - base
	want := 5 * simos.RoundPages(daemonGrowthPerContainer)
	// First pull also charges the image layer cache to the daemon cgroup.
	if grown < want {
		t.Fatalf("daemon growth = %d, want >= %d", grown, want)
	}
}

func TestHandlerClassification(t *testing.T) {
	if !HandlerShimWasmtime.IsRunwasi() || HandlerCrunWAMR.IsRunwasi() {
		t.Fatal("IsRunwasi")
	}
	if !HandlerCrunWAMR.IsWasm() || HandlerRunc.IsWasm() || HandlerCrun.IsWasm() {
		t.Fatal("IsWasm")
	}
	if len(AllHandlers()) != 9 {
		t.Fatalf("AllHandlers = %d", len(AllHandlers()))
	}
	for _, h := range []RuntimeHandler{HandlerCrunWAMR, HandlerShimWasmer, HandlerCrunWasmEdge} {
		if _, ok := h.engineFor(); !ok {
			t.Errorf("%s has no engine", h)
		}
	}
	if _, ok := HandlerRunc.engineFor(); ok {
		t.Error("runc should have no engine")
	}
}

func TestSpecForImage(t *testing.T) {
	images, _ := NewImageStore()
	img, _, _ := images.Pull("minimal-service:wasm")
	spec := SpecForImage(img, "/kubepods/p/c", []string{"MODE=x"}, []string{"--flag"})
	if spec.Annotations["module.wasm.image/variant"] != "compat" {
		t.Fatal("wasm annotation missing")
	}
	if spec.Process.Args[len(spec.Process.Args)-1] != "--flag" {
		t.Fatalf("args = %v", spec.Process.Args)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	py, _, _ := images.Pull("python-minimal-service:3.11")
	pySpec := SpecForImage(py, "/kubepods/p/c", nil, nil)
	if _, ok := pySpec.Annotations["module.wasm.image/variant"]; ok {
		t.Fatal("python image got wasm annotation")
	}
}

func TestClientAccessors(t *testing.T) {
	c := testClient(t)
	if c.Images() == nil {
		t.Fatal("Images accessor")
	}
	ctr, err := c.CreateContainer("acc", "minimal-service:wasm", HandlerCrunWAMR, ContainerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Container("acc")
	if !ok || got != ctr {
		t.Fatal("Container lookup")
	}
	if _, ok := c.Container("ghost"); ok {
		t.Fatal("ghost container found")
	}
	task, err := ctr.NewTask()
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Task() != task {
		t.Fatal("Task accessor")
	}
	if task.Report() != nil {
		t.Fatal("report before start")
	}
	rep, err := task.Start()
	if err != nil {
		t.Fatal(err)
	}
	if task.Report() != rep {
		t.Fatal("Report accessor after start")
	}
}

func TestPrePullChargesOnce(t *testing.T) {
	c := testClient(t)
	free0 := c.Node().Free().UsedBytes
	if err := c.PrePull("python-minimal-service:3.11"); err != nil {
		t.Fatal(err)
	}
	free1 := c.Node().Free().UsedBytes
	if free1 <= free0 {
		t.Fatal("first pull charged nothing")
	}
	if err := c.PrePull("python-minimal-service:3.11"); err != nil {
		t.Fatal(err)
	}
	if c.Node().Free().UsedBytes != free1 {
		t.Fatal("second pull charged again")
	}
	if err := c.PrePull("ghost:v1"); err == nil {
		t.Fatal("pulled unknown image")
	}
}

func TestImageStoreAddCustom(t *testing.T) {
	images, _ := NewImageStore()
	img, err := BuildWasmImage("custom:wasm", "/svc.wasm", []byte("\x00asm\x01\x00\x00\x00"))
	if err != nil {
		t.Fatal(err)
	}
	images.Add(img)
	got, first, err := images.Pull("custom:wasm")
	if err != nil || !first || got.Name != "custom:wasm" {
		t.Fatalf("pull custom: %v %v %v", got, first, err)
	}
	if got.Entrypoint[0] != "/svc.wasm" {
		t.Fatalf("entrypoint = %v", got.Entrypoint)
	}
}

func TestYoukiHandlerThroughContainerd(t *testing.T) {
	c := testClient(t)
	ctr, err := c.CreateContainer("y", "minimal-service:wasm", HandlerYouki, ContainerOpts{
		CgroupsPath: "/kubepods/pody/app",
	})
	if err != nil {
		t.Fatal(err)
	}
	task, _ := ctr.NewTask()
	rep, err := task.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Handler, "youki") || !strings.Contains(rep.Handler, "wasmedge") {
		t.Fatalf("handler = %q", rep.Handler)
	}
}

func TestUnknownHandlerFails(t *testing.T) {
	c := testClient(t)
	ctr, err := c.CreateContainer("u", "minimal-service:wasm", RuntimeHandler("bogus"), ContainerOpts{})
	if err != nil {
		t.Fatal(err)
	}
	task, _ := ctr.NewTask()
	if _, err := task.Start(); err == nil {
		t.Fatal("bogus handler started")
	}
}

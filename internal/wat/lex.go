// Package wat assembles a practical subset of the WebAssembly text format
// into binary modules (via the wasm package data model). It supports the
// constructs needed by this repository's workloads and tests: named
// functions/locals/globals/types/labels, flat and folded instruction forms,
// inline exports, imports, memories with data segments, tables with element
// segments, and start functions.
package wat

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokLParen tokenKind = iota
	tokRParen
	tokAtom   // keyword, number, or $identifier
	tokString // quoted string (escapes already processed)
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("wat: line %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

// next returns the next token, skipping whitespace and comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance(1)
		case c == ';' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ';':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ';':
			// Block comment, nestable.
			depth := 0
			for l.pos < len(l.src) {
				if l.pos+1 < len(l.src) && l.src[l.pos] == '(' && l.src[l.pos+1] == ';' {
					depth++
					l.advance(2)
				} else if l.pos+1 < len(l.src) && l.src[l.pos] == ';' && l.src[l.pos+1] == ')' {
					depth--
					l.advance(2)
					if depth == 0 {
						break
					}
				} else {
					l.advance(1)
				}
			}
			if depth != 0 {
				return token{}, l.errf("unterminated block comment")
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

scan:
	startLine, startCol := l.line, l.col
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.advance(1)
		return token{kind: tokLParen, text: "(", line: startLine, col: startCol}, nil
	case c == ')':
		l.advance(1)
		return token{kind: tokRParen, text: ")", line: startLine, col: startCol}, nil
	case c == '"':
		return l.scanString(startLine, startCol)
	default:
		start := l.pos
		for l.pos < len(l.src) && !isDelim(l.src[l.pos]) {
			l.advance(1)
		}
		return token{kind: tokAtom, text: l.src[start:l.pos], line: startLine, col: startCol}, nil
	}
}

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '(', ')', '"', ';':
		return true
	}
	return false
}

func (l *lexer) scanString(startLine, startCol int) (token, error) {
	l.advance(1) // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.advance(1)
			return token{kind: tokString, text: sb.String(), line: startLine, col: startCol}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated escape")
			}
			e := l.src[l.pos+1]
			switch e {
			case 'n':
				sb.WriteByte('\n')
				l.advance(2)
			case 't':
				sb.WriteByte('\t')
				l.advance(2)
			case 'r':
				sb.WriteByte('\r')
				l.advance(2)
			case '\\', '"', '\'':
				sb.WriteByte(e)
				l.advance(2)
			default:
				// Two-digit hex escape.
				if l.pos+2 >= len(l.src) {
					return token{}, l.errf("truncated hex escape")
				}
				hi, ok1 := hexVal(l.src[l.pos+1])
				lo, ok2 := hexVal(l.src[l.pos+2])
				if !ok1 || !ok2 {
					return token{}, l.errf("invalid escape \\%c", e)
				}
				sb.WriteByte(hi<<4 | lo)
				l.advance(3)
			}
		default:
			sb.WriteByte(c)
			l.advance(1)
		}
	}
	return token{}, l.errf("unterminated string")
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// sexpr is a parsed s-expression node: either an atom/string leaf or a list.
type sexpr struct {
	atom   string
	str    string
	isStr  bool
	isList bool
	items  []*sexpr
	line   int
	col    int
}

func (s *sexpr) head() string {
	if s.isList && len(s.items) > 0 && !s.items[0].isList {
		return s.items[0].atom
	}
	return ""
}

// parseAll parses the whole source into top-level s-expressions.
func parseAll(src string) ([]*sexpr, error) {
	l := newLexer(src)
	var stack [][]*sexpr
	var cur []*sexpr
	var lines []int
	var cols []int
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		switch tok.kind {
		case tokEOF:
			if len(stack) != 0 {
				return nil, fmt.Errorf("wat: unclosed parenthesis")
			}
			return cur, nil
		case tokLParen:
			stack = append(stack, cur)
			lines = append(lines, tok.line)
			cols = append(cols, tok.col)
			cur = nil
		case tokRParen:
			if len(stack) == 0 {
				return nil, fmt.Errorf("wat: line %d:%d: unexpected )", tok.line, tok.col)
			}
			node := &sexpr{isList: true, items: cur, line: lines[len(lines)-1], col: cols[len(cols)-1]}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			lines = lines[:len(lines)-1]
			cols = cols[:len(cols)-1]
			cur = append(cur, node)
		case tokAtom:
			cur = append(cur, &sexpr{atom: tok.text, line: tok.line, col: tok.col})
		case tokString:
			cur = append(cur, &sexpr{str: tok.text, isStr: true, line: tok.line, col: tok.col})
		}
	}
}

package wat

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"wasmcontainers/internal/wasm"
)

// Compile assembles WebAssembly text format source into a validated module.
func Compile(src string) (*wasm.Module, error) {
	m, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	if err := wasm.Validate(m); err != nil {
		return nil, err
	}
	return m, nil
}

// CompileToBinary assembles and encodes the source to wasm binary bytes.
func CompileToBinary(src string) ([]byte, error) {
	m, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return wasm.Encode(m), nil
}

// Assemble translates WAT source into an (unvalidated) module.
func Assemble(src string) (*wasm.Module, error) {
	top, err := parseAll(src)
	if err != nil {
		return nil, err
	}
	var fields []*sexpr
	if len(top) == 1 && top[0].head() == "module" {
		fields = top[0].items[1:]
		// Skip an optional module name.
		if len(fields) > 0 && !fields[0].isList && strings.HasPrefix(fields[0].atom, "$") {
			fields = fields[1:]
		}
	} else {
		fields = top
	}
	a := newAssembler()
	if err := a.collect(fields); err != nil {
		return nil, err
	}
	if err := a.assembleBodies(); err != nil {
		return nil, err
	}
	// Emit a "name" custom section from the $identifiers so traps and tools
	// can report symbolic function names.
	if len(a.funcNames) > 0 {
		nm := wasm.NameMap{FuncNames: make(map[uint32]string, len(a.funcNames))}
		for name, idx := range a.funcNames {
			nm.FuncNames[idx] = strings.TrimPrefix(name, "$")
		}
		wasm.EncodeNameSection(a.m, nm)
	}
	return a.m, nil
}

type funcDecl struct {
	name       string
	typeIdx    uint32
	paramNames []string
	localNames []string
	locals     []wasm.ValueType
	body       []*sexpr
	node       *sexpr
}

type assembler struct {
	m *wasm.Module

	typeNames   map[string]uint32
	funcNames   map[string]uint32
	globalNames map[string]uint32
	tableNames  map[string]uint32
	memNames    map[string]uint32

	numImportedFuncs   int
	numImportedGlobals int
	decls              []*funcDecl

	// deferred element/data segments whose function names resolve after all
	// funcs are collected.
	elemDefs []*sexpr
	startDef *sexpr
}

func newAssembler() *assembler {
	return &assembler{
		m:           &wasm.Module{},
		typeNames:   make(map[string]uint32),
		funcNames:   make(map[string]uint32),
		globalNames: make(map[string]uint32),
		tableNames:  make(map[string]uint32),
		memNames:    make(map[string]uint32),
	}
}

func errAt(s *sexpr, format string, args ...interface{}) error {
	return fmt.Errorf("wat: line %d:%d: %s", s.line, s.col, fmt.Sprintf(format, args...))
}

// collect performs the first pass: declarations and index assignment.
func (a *assembler) collect(fields []*sexpr) error {
	// Types first so (type $x) references resolve regardless of order.
	for _, f := range fields {
		if f.head() == "type" {
			if err := a.collectType(f); err != nil {
				return err
			}
		}
	}
	// Imports establish the leading part of each index space.
	for _, f := range fields {
		if f.head() == "import" {
			if err := a.collectImport(f); err != nil {
				return err
			}
		}
	}
	for _, f := range fields {
		switch f.head() {
		case "type", "import":
			// done
		case "func":
			if err := a.collectFunc(f); err != nil {
				return err
			}
		case "memory":
			if err := a.collectMemory(f); err != nil {
				return err
			}
		case "table":
			if err := a.collectTable(f); err != nil {
				return err
			}
		case "global":
			if err := a.collectGlobal(f); err != nil {
				return err
			}
		case "export":
			if err := a.collectExport(f); err != nil {
				return err
			}
		case "start":
			a.startDef = f
		case "elem":
			a.elemDefs = append(a.elemDefs, f)
		case "data":
			if err := a.collectData(f); err != nil {
				return err
			}
		default:
			return errAt(f, "unsupported module field %q", f.head())
		}
	}
	// Resolve deferred elems and start.
	for _, f := range a.elemDefs {
		if err := a.collectElem(f); err != nil {
			return err
		}
	}
	if a.startDef != nil {
		idx, err := a.funcIndex(a.startDef.items[1])
		if err != nil {
			return err
		}
		a.m.StartSet = true
		a.m.Start = idx
	}
	return nil
}

func (a *assembler) collectType(f *sexpr) error {
	items := f.items[1:]
	name := ""
	if len(items) > 0 && !items[0].isList && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom
		items = items[1:]
	}
	if len(items) != 1 || items[0].head() != "func" {
		return errAt(f, "type must contain a (func ...) form")
	}
	ft, _, err := a.parseFuncSig(items[0].items[1:])
	if err != nil {
		return err
	}
	idx := uint32(len(a.m.Types))
	a.m.Types = append(a.m.Types, ft)
	if name != "" {
		a.typeNames[name] = idx
	}
	return nil
}

// parseFuncSig parses (param ...)* (result ...)* forms, returning the
// signature and parameter names (empty string for unnamed).
func (a *assembler) parseFuncSig(items []*sexpr) (wasm.FuncType, []string, error) {
	var ft wasm.FuncType
	var names []string
	for _, it := range items {
		switch it.head() {
		case "param":
			args := it.items[1:]
			if len(args) >= 2 && !args[0].isList && strings.HasPrefix(args[0].atom, "$") {
				vt, err := valueType(args[1])
				if err != nil {
					return ft, nil, err
				}
				names = append(names, args[0].atom)
				ft.Params = append(ft.Params, vt)
			} else {
				for _, t := range args {
					vt, err := valueType(t)
					if err != nil {
						return ft, nil, err
					}
					names = append(names, "")
					ft.Params = append(ft.Params, vt)
				}
			}
		case "result":
			for _, t := range it.items[1:] {
				vt, err := valueType(t)
				if err != nil {
					return ft, nil, err
				}
				ft.Results = append(ft.Results, vt)
			}
		default:
			return ft, nil, errAt(it, "expected (param ...) or (result ...), got %q", it.head())
		}
	}
	return ft, names, nil
}

func valueType(s *sexpr) (wasm.ValueType, error) {
	switch s.atom {
	case "i32":
		return wasm.ValueTypeI32, nil
	case "i64":
		return wasm.ValueTypeI64, nil
	case "f32":
		return wasm.ValueTypeF32, nil
	case "f64":
		return wasm.ValueTypeF64, nil
	}
	return 0, errAt(s, "unknown value type %q", s.atom)
}

// typeIndexFor finds or creates a type index for the signature.
func (a *assembler) typeIndexFor(ft wasm.FuncType) uint32 {
	for i, t := range a.m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	a.m.Types = append(a.m.Types, ft)
	return uint32(len(a.m.Types) - 1)
}

func (a *assembler) collectImport(f *sexpr) error {
	items := f.items[1:]
	if len(items) != 3 || !items[0].isStr || !items[1].isStr {
		return errAt(f, `import must be (import "mod" "name" <desc>)`)
	}
	mod, name, desc := items[0].str, items[1].str, items[2]
	imp := wasm.Import{Module: mod, Name: name}
	descItems := desc.items[1:]
	var id string
	if len(descItems) > 0 && !descItems[0].isList && strings.HasPrefix(descItems[0].atom, "$") {
		id = descItems[0].atom
		descItems = descItems[1:]
	}
	switch desc.head() {
	case "func":
		imp.Kind = wasm.ExternalFunc
		if len(descItems) == 1 && descItems[0].head() == "type" {
			ti, err := a.typeIndex(descItems[0].items[1])
			if err != nil {
				return err
			}
			imp.Func = ti
		} else {
			ft, _, err := a.parseFuncSig(descItems)
			if err != nil {
				return err
			}
			imp.Func = a.typeIndexFor(ft)
		}
		if id != "" {
			a.funcNames[id] = uint32(a.numImportedFuncs)
		}
		a.numImportedFuncs++
	case "memory":
		imp.Kind = wasm.ExternalMemory
		lim, err := parseLimits(descItems)
		if err != nil {
			return err
		}
		imp.Memory = wasm.MemoryType{Limits: lim}
		if id != "" {
			a.memNames[id] = 0
		}
	case "table":
		imp.Kind = wasm.ExternalTable
		if len(descItems) < 1 {
			return errAt(desc, "table import needs limits and element type")
		}
		lim, err := parseLimits(descItems[:len(descItems)-1])
		if err != nil {
			return err
		}
		imp.Table = wasm.TableType{ElemType: wasm.ValueTypeFuncref, Limits: lim}
		if id != "" {
			a.tableNames[id] = 0
		}
	case "global":
		imp.Kind = wasm.ExternalGlobal
		gt, err := parseGlobalType(descItems[0])
		if err != nil {
			return err
		}
		imp.Global = gt
		if id != "" {
			a.globalNames[id] = uint32(a.numImportedGlobals)
		}
		a.numImportedGlobals++
	default:
		return errAt(desc, "unsupported import kind %q", desc.head())
	}
	a.m.Imports = append(a.m.Imports, imp)
	return nil
}

func parseLimits(items []*sexpr) (wasm.Limits, error) {
	var lim wasm.Limits
	if len(items) < 1 {
		return lim, fmt.Errorf("wat: limits require at least a minimum")
	}
	min, err := parseUint32(items[0])
	if err != nil {
		return lim, err
	}
	lim.Min = min
	if len(items) >= 2 && !items[1].isList {
		max, err := parseUint32(items[1])
		if err != nil {
			return lim, err
		}
		lim.Max = max
		lim.HasMax = true
	}
	return lim, nil
}

func parseGlobalType(s *sexpr) (wasm.GlobalType, error) {
	if s.isList && s.head() == "mut" {
		vt, err := valueType(s.items[1])
		if err != nil {
			return wasm.GlobalType{}, err
		}
		return wasm.GlobalType{ValType: vt, Mutable: true}, nil
	}
	vt, err := valueType(s)
	if err != nil {
		return wasm.GlobalType{}, err
	}
	return wasm.GlobalType{ValType: vt}, nil
}

func (a *assembler) collectFunc(f *sexpr) error {
	items := f.items[1:]
	d := &funcDecl{node: f}
	if len(items) > 0 && !items[0].isList && strings.HasPrefix(items[0].atom, "$") {
		d.name = items[0].atom
		items = items[1:]
	}
	fidx := uint32(a.numImportedFuncs + len(a.decls))
	// Inline exports.
	for len(items) > 0 && items[0].head() == "export" {
		a.m.Exports = append(a.m.Exports, wasm.Export{
			Name: items[0].items[1].str, Kind: wasm.ExternalFunc, Index: fidx,
		})
		items = items[1:]
	}
	// Signature: explicit (type $t) and/or inline params/results.
	var ft wasm.FuncType
	var paramNames []string
	if len(items) > 0 && items[0].head() == "type" {
		ti, err := a.typeIndex(items[0].items[1])
		if err != nil {
			return err
		}
		ft = a.m.Types[ti]
		d.typeIdx = ti
		items = items[1:]
		paramNames = make([]string, len(ft.Params))
		// Inline param names may still follow; consume matching forms.
		var sigItems []*sexpr
		for len(items) > 0 && (items[0].head() == "param" || items[0].head() == "result") {
			sigItems = append(sigItems, items[0])
			items = items[1:]
		}
		if len(sigItems) > 0 {
			ift, names, err := a.parseFuncSig(sigItems)
			if err != nil {
				return err
			}
			if !ift.Equal(ft) {
				return errAt(f, "inline signature does not match (type) use")
			}
			paramNames = names
		}
	} else {
		var sigItems []*sexpr
		for len(items) > 0 && (items[0].head() == "param" || items[0].head() == "result") {
			sigItems = append(sigItems, items[0])
			items = items[1:]
		}
		var err error
		ft, paramNames, err = a.parseFuncSig(sigItems)
		if err != nil {
			return err
		}
		d.typeIdx = a.typeIndexFor(ft)
	}
	d.paramNames = paramNames
	// Locals.
	for len(items) > 0 && items[0].head() == "local" {
		args := items[0].items[1:]
		if len(args) >= 2 && !args[0].isList && strings.HasPrefix(args[0].atom, "$") {
			vt, err := valueType(args[1])
			if err != nil {
				return err
			}
			d.localNames = append(d.localNames, args[0].atom)
			d.locals = append(d.locals, vt)
		} else {
			for _, t := range args {
				vt, err := valueType(t)
				if err != nil {
					return err
				}
				d.localNames = append(d.localNames, "")
				d.locals = append(d.locals, vt)
			}
		}
		items = items[1:]
	}
	d.body = items
	if d.name != "" {
		a.funcNames[d.name] = fidx
	}
	a.decls = append(a.decls, d)
	a.m.Functions = append(a.m.Functions, d.typeIdx)
	return nil
}

func (a *assembler) collectMemory(f *sexpr) error {
	items := f.items[1:]
	if len(items) > 0 && !items[0].isList && strings.HasPrefix(items[0].atom, "$") {
		a.memNames[items[0].atom] = 0
		items = items[1:]
	}
	for len(items) > 0 && items[0].head() == "export" {
		a.m.Exports = append(a.m.Exports, wasm.Export{
			Name: items[0].items[1].str, Kind: wasm.ExternalMemory, Index: 0,
		})
		items = items[1:]
	}
	lim, err := parseLimits(items)
	if err != nil {
		return errAt(f, "memory: %v", err)
	}
	a.m.Memories = append(a.m.Memories, wasm.MemoryType{Limits: lim})
	return nil
}

func (a *assembler) collectTable(f *sexpr) error {
	items := f.items[1:]
	if len(items) > 0 && !items[0].isList && strings.HasPrefix(items[0].atom, "$") {
		a.tableNames[items[0].atom] = 0
		items = items[1:]
	}
	for len(items) > 0 && items[0].head() == "export" {
		a.m.Exports = append(a.m.Exports, wasm.Export{
			Name: items[0].items[1].str, Kind: wasm.ExternalTable, Index: 0,
		})
		items = items[1:]
	}
	// Trailing "funcref" atom.
	if len(items) > 0 && items[len(items)-1].atom == "funcref" {
		items = items[:len(items)-1]
	}
	lim, err := parseLimits(items)
	if err != nil {
		return errAt(f, "table: %v", err)
	}
	a.m.Tables = append(a.m.Tables, wasm.TableType{ElemType: wasm.ValueTypeFuncref, Limits: lim})
	return nil
}

func (a *assembler) collectGlobal(f *sexpr) error {
	items := f.items[1:]
	name := ""
	if len(items) > 0 && !items[0].isList && strings.HasPrefix(items[0].atom, "$") {
		name = items[0].atom
		items = items[1:]
	}
	idx := uint32(a.numImportedGlobals + len(a.m.Globals))
	for len(items) > 0 && items[0].head() == "export" {
		a.m.Exports = append(a.m.Exports, wasm.Export{
			Name: items[0].items[1].str, Kind: wasm.ExternalGlobal, Index: idx,
		})
		items = items[1:]
	}
	if len(items) != 2 {
		return errAt(f, "global needs a type and an initializer")
	}
	gt, err := parseGlobalType(items[0])
	if err != nil {
		return err
	}
	init, err := a.constExpr(items[1])
	if err != nil {
		return err
	}
	a.m.Globals = append(a.m.Globals, wasm.Global{Type: gt, Init: init})
	if name != "" {
		a.globalNames[name] = idx
	}
	return nil
}

func (a *assembler) constExpr(s *sexpr) (wasm.ConstExpr, error) {
	if !s.isList || len(s.items) < 1 {
		return wasm.ConstExpr{}, errAt(s, "expected constant expression")
	}
	switch s.head() {
	case "i32.const":
		v, err := parseInt32(s.items[1])
		if err != nil {
			return wasm.ConstExpr{}, err
		}
		return wasm.I32Const(v), nil
	case "i64.const":
		v, err := parseInt64(s.items[1])
		if err != nil {
			return wasm.ConstExpr{}, err
		}
		return wasm.I64Const(v), nil
	case "f32.const":
		v, err := parseFloat(s.items[1])
		if err != nil {
			return wasm.ConstExpr{}, err
		}
		return wasm.ConstExpr{Op: wasm.ConstF32, Value: uint64(math.Float32bits(float32(v)))}, nil
	case "f64.const":
		v, err := parseFloat(s.items[1])
		if err != nil {
			return wasm.ConstExpr{}, err
		}
		return wasm.ConstExpr{Op: wasm.ConstF64, Value: math.Float64bits(v)}, nil
	case "global.get":
		gi, err := a.globalIndex(s.items[1])
		if err != nil {
			return wasm.ConstExpr{}, err
		}
		return wasm.GlobalGet(gi), nil
	}
	return wasm.ConstExpr{}, errAt(s, "unsupported constant expression %q", s.head())
}

func (a *assembler) collectExport(f *sexpr) error {
	items := f.items[1:]
	if len(items) != 2 || !items[0].isStr || !items[1].isList {
		return errAt(f, `export must be (export "name" (<kind> <idx>))`)
	}
	name := items[0].str
	desc := items[1]
	var kind wasm.ExternalKind
	var idx uint32
	var err error
	switch desc.head() {
	case "func":
		kind = wasm.ExternalFunc
		idx, err = a.funcIndex(desc.items[1])
	case "memory":
		kind = wasm.ExternalMemory
		idx = 0
	case "table":
		kind = wasm.ExternalTable
		idx = 0
	case "global":
		kind = wasm.ExternalGlobal
		idx, err = a.globalIndex(desc.items[1])
	default:
		return errAt(desc, "unsupported export kind %q", desc.head())
	}
	if err != nil {
		return err
	}
	a.m.Exports = append(a.m.Exports, wasm.Export{Name: name, Kind: kind, Index: idx})
	return nil
}

func (a *assembler) collectElem(f *sexpr) error {
	items := f.items[1:]
	if len(items) < 1 {
		return errAt(f, "elem needs an offset")
	}
	off, err := a.constExpr(items[0])
	if err != nil {
		return err
	}
	var indices []uint32
	for _, it := range items[1:] {
		if it.atom == "func" {
			continue
		}
		fi, err := a.funcIndex(it)
		if err != nil {
			return err
		}
		indices = append(indices, fi)
	}
	a.m.Elements = append(a.m.Elements, wasm.ElementSegment{Offset: off, Indices: indices})
	return nil
}

func (a *assembler) collectData(f *sexpr) error {
	items := f.items[1:]
	if len(items) < 1 {
		return errAt(f, "data needs an offset")
	}
	off, err := a.constExpr(items[0])
	if err != nil {
		return err
	}
	var data []byte
	for _, it := range items[1:] {
		if !it.isStr {
			return errAt(it, "data segment contents must be strings")
		}
		data = append(data, it.str...)
	}
	a.m.Data = append(a.m.Data, wasm.DataSegment{Offset: off, Data: data})
	return nil
}

// Index resolution helpers.

func (a *assembler) typeIndex(s *sexpr) (uint32, error) {
	if strings.HasPrefix(s.atom, "$") {
		if i, ok := a.typeNames[s.atom]; ok {
			return i, nil
		}
		return 0, errAt(s, "unknown type %s", s.atom)
	}
	return parseUint32(s)
}

func (a *assembler) funcIndex(s *sexpr) (uint32, error) {
	if strings.HasPrefix(s.atom, "$") {
		if i, ok := a.funcNames[s.atom]; ok {
			return i, nil
		}
		return 0, errAt(s, "unknown function %s", s.atom)
	}
	return parseUint32(s)
}

func (a *assembler) globalIndex(s *sexpr) (uint32, error) {
	if strings.HasPrefix(s.atom, "$") {
		if i, ok := a.globalNames[s.atom]; ok {
			return i, nil
		}
		return 0, errAt(s, "unknown global %s", s.atom)
	}
	return parseUint32(s)
}

// Number parsing with underscores and hex support.

func cleanNum(s string) string { return strings.ReplaceAll(s, "_", "") }

func parseUint32(s *sexpr) (uint32, error) {
	if s.isList {
		return 0, errAt(s, "expected integer")
	}
	v, err := strconv.ParseUint(cleanNum(s.atom), 0, 32)
	if err != nil {
		return 0, errAt(s, "invalid integer %q", s.atom)
	}
	return uint32(v), nil
}

func parseInt32(s *sexpr) (int32, error) {
	t := cleanNum(s.atom)
	if v, err := strconv.ParseInt(t, 0, 32); err == nil {
		return int32(v), nil
	}
	// Allow unsigned forms up to MaxUint32 (e.g. 0xffffffff).
	if v, err := strconv.ParseUint(t, 0, 32); err == nil {
		return int32(v), nil
	}
	return 0, errAt(s, "invalid i32 literal %q", s.atom)
}

func parseInt64(s *sexpr) (int64, error) {
	t := cleanNum(s.atom)
	if v, err := strconv.ParseInt(t, 0, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseUint(t, 0, 64); err == nil {
		return int64(v), nil
	}
	return 0, errAt(s, "invalid i64 literal %q", s.atom)
}

func parseFloat(s *sexpr) (float64, error) {
	t := cleanNum(s.atom)
	switch t {
	case "inf":
		return math.Inf(1), nil
	case "-inf":
		return math.Inf(-1), nil
	case "nan":
		return math.NaN(), nil
	case "-nan":
		return math.Copysign(math.NaN(), -1), nil
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, errAt(s, "invalid float literal %q", s.atom)
	}
	return v, nil
}

package wat

import (
	"fmt"
	"testing"

	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
)

func run(t *testing.T, src, fn string, args ...exec.Value) []exec.Value {
	t.Helper()
	m, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s := exec.NewStore(exec.Config{})
	inst, err := s.Instantiate(m, "t")
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	res, err := inst.Call(fn, args...)
	if err != nil {
		t.Fatalf("Call %s: %v", fn, err)
	}
	return res
}

func TestFlatAdd(t *testing.T) {
	src := `
(module
  (func $add (export "add") (param $a i32) (param $b i32) (result i32)
    local.get $a
    local.get $b
    i32.add))
`
	res := run(t, src, "add", exec.I32(20), exec.I32(22))
	if got := exec.AsI32(res[0]); got != 42 {
		t.Fatalf("add = %d, want 42", got)
	}
}

func TestFoldedExpressions(t *testing.T) {
	src := `
(module
  (func (export "calc") (param i32 i32) (result i32)
    (i32.mul (i32.add (local.get 0) (i32.const 1)) (local.get 1))))
`
	res := run(t, src, "calc", exec.I32(5), exec.I32(7))
	if got := exec.AsI32(res[0]); got != 42 {
		t.Fatalf("calc = %d, want 42", got)
	}
}

func TestFlatControlFlow(t *testing.T) {
	// Sum 1..n with a flat loop.
	src := `
(module
  (func (export "sum") (param $n i32) (result i32) (local $acc i32)
    block $exit
      loop $top
        local.get $n
        i32.eqz
        br_if $exit
        local.get $acc
        local.get $n
        i32.add
        local.set $acc
        local.get $n
        i32.const 1
        i32.sub
        local.set $n
        br $top
      end
    end
    local.get $acc))
`
	res := run(t, src, "sum", exec.I32(100))
	if got := exec.AsI32(res[0]); got != 5050 {
		t.Fatalf("sum(100) = %d, want 5050", got)
	}
}

func TestFoldedIfThenElse(t *testing.T) {
	src := `
(module
  (func (export "max") (param i32 i32) (result i32)
    (if (result i32) (i32.gt_s (local.get 0) (local.get 1))
      (then (local.get 0))
      (else (local.get 1)))))
`
	res := run(t, src, "max", exec.I32(3), exec.I32(9))
	if got := exec.AsI32(res[0]); got != 9 {
		t.Fatalf("max(3,9) = %d, want 9", got)
	}
	res = run(t, src, "max", exec.I32(11), exec.I32(9))
	if got := exec.AsI32(res[0]); got != 11 {
		t.Fatalf("max(11,9) = %d, want 11", got)
	}
}

func TestFlatIfElse(t *testing.T) {
	src := `
(module
  (func (export "sign") (param i32) (result i32)
    local.get 0
    i32.const 0
    i32.lt_s
    if (result i32)
      i32.const -1
    else
      local.get 0
      i32.const 0
      i32.gt_s
      if (result i32)
        i32.const 1
      else
        i32.const 0
      end
    end))
`
	cases := map[int32]int32{-5: -1, 0: 0, 17: 1}
	for in, want := range cases {
		res := run(t, src, "sign", exec.I32(in))
		if got := exec.AsI32(res[0]); got != want {
			t.Fatalf("sign(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestMemoryAndData(t *testing.T) {
	src := `
(module
  (memory (export "memory") 1)
  (data (i32.const 8) "\de\ad\be\ef")
  (func (export "peek") (param i32) (result i32)
    local.get 0
    i32.load8_u))
`
	res := run(t, src, "peek", exec.I32(8))
	if got := exec.AsU32(res[0]); got != 0xde {
		t.Fatalf("mem[8] = %#x, want 0xde", got)
	}
}

func TestMemargOffsets(t *testing.T) {
	src := `
(module
  (memory 1)
  (func (export "roundtrip") (param i32 i64) (result i64)
    local.get 0
    local.get 1
    i64.store offset=16
    local.get 0
    i64.load offset=16 align=8))
`
	res := run(t, src, "roundtrip", exec.I32(100), exec.I64(-12345678901234))
	if got := exec.AsI64(res[0]); got != -12345678901234 {
		t.Fatalf("roundtrip = %d", got)
	}
}

func TestGlobalsAndExports(t *testing.T) {
	src := `
(module
  (global $counter (export "counter") (mut i32) (i32.const 100))
  (func (export "bump") (result i32)
    global.get $counter
    i32.const 1
    i32.add
    global.set $counter
    global.get $counter))
`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	s := exec.NewStore(exec.Config{})
	inst, err := s.Instantiate(m, "g")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("bump")
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.AsI32(res[0]); got != 101 {
		t.Fatalf("bump = %d, want 101", got)
	}
	if g := inst.GlobalByName("counter"); g == nil || exec.AsI32(g.Get()) != 101 {
		t.Fatalf("exported global not updated")
	}
}

func TestImportsAndHostCalls(t *testing.T) {
	src := `
(module
  (import "env" "mul3" (func $mul3 (param i32) (result i32)))
  (func (export "f") (param i32) (result i32)
    (call $mul3 (local.get 0))))
`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	s := exec.NewStore(exec.Config{})
	s.NewHostModule("env").AddFunc("mul3", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValueType{wasm.ValueTypeI32}, Results: []wasm.ValueType{wasm.ValueTypeI32}},
		Fn: func(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
			return []exec.Value{exec.I32(exec.AsI32(args[0]) * 3)}, nil
		},
	})
	inst, err := s.Instantiate(m, "t")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("f", exec.I32(14))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.AsI32(res[0]); got != 42 {
		t.Fatalf("f(14) = %d, want 42", got)
	}
}

func TestTableElemCallIndirect(t *testing.T) {
	src := `
(module
  (type $binop (func (param i32 i32) (result i32)))
  (table 4 funcref)
  (elem (i32.const 0) $add $sub)
  (func $add (type $binop) local.get 0 local.get 1 i32.add)
  (func $sub (type $binop) local.get 0 local.get 1 i32.sub)
  (func (export "dispatch") (param i32 i32 i32) (result i32)
    local.get 1
    local.get 2
    local.get 0
    call_indirect (type $binop)))
`
	res := run(t, src, "dispatch", exec.I32(0), exec.I32(30), exec.I32(12))
	if got := exec.AsI32(res[0]); got != 42 {
		t.Fatalf("dispatch add = %d, want 42", got)
	}
	res = run(t, src, "dispatch", exec.I32(1), exec.I32(50), exec.I32(8))
	if got := exec.AsI32(res[0]); got != 42 {
		t.Fatalf("dispatch sub = %d, want 42", got)
	}
}

func TestStartSection(t *testing.T) {
	src := `
(module
  (global $g (mut i32) (i32.const 0))
  (func $init global.set $g (i32.const 0) drop i32.const 41 global.set $g)
  (func (export "get") (result i32) global.get $g i32.const 1 i32.add)
  (start $init))
`
	// Note: the body above exercises odd-but-legal flat sequencing.
	src = `
(module
  (global $g (mut i32) (i32.const 0))
  (func $init (i32.const 41) (global.set $g))
  (func (export "get") (result i32) global.get $g i32.const 1 i32.add)
  (start $init))
`
	res := run(t, src, "get")
	if got := exec.AsI32(res[0]); got != 42 {
		t.Fatalf("get = %d, want 42", got)
	}
}

func TestBrTableWat(t *testing.T) {
	src := `
(module
  (func (export "classify") (param i32) (result i32)
    block $default
      block $two
        block $one
          block $zero
            local.get 0
            br_table $zero $one $two $default
          end
          i32.const 1000
          return
        end
        i32.const 2000
        return
      end
      i32.const 3000
      return
    end
    i32.const 9999))
`
	cases := map[int32]int32{0: 1000, 1: 2000, 2: 3000, 3: 9999, 77: 9999}
	for in, want := range cases {
		res := run(t, src, "classify", exec.I32(in))
		if got := exec.AsI32(res[0]); got != want {
			t.Fatalf("classify(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
;; line comment
(module
  (; block
     comment (; nested ;) ;)
  (func (export "f") (result i32)
    i32.const 7 ;; seven
  ))
`
	res := run(t, src, "f")
	if got := exec.AsI32(res[0]); got != 7 {
		t.Fatalf("f = %d, want 7", got)
	}
}

func TestFloatLiterals(t *testing.T) {
	src := `
(module
  (func (export "area") (param f64) (result f64)
    (f64.mul (f64.mul (local.get 0) (local.get 0)) (f64.const 3.14159265))))
`
	res := run(t, src, "area", exec.F64(2))
	got := exec.AsF64(res[0])
	if got < 12.56 || got > 12.57 {
		t.Fatalf("area(2) = %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown instr", `(module (func (export "f") bogus.op))`},
		{"unknown local", `(module (func (export "f") local.get $missing drop))`},
		{"unknown label", `(module (func (export "f") br $nope))`},
		{"unbalanced", `(module (func (export "f")`},
		{"type mismatch", `(module (func (export "f") (result i32) i64.const 1))`},
		{"unknown func", `(module (func (export "f") call $ghost))`},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: expected error, got none", c.name)
		}
	}
}

func TestEncodeDecodeRoundtripFromWat(t *testing.T) {
	src := `
(module
  (memory 1 4)
  (global $g i64 (i64.const -5))
  (data (i32.const 0) "xyz")
  (func (export "f") (param i64) (result i64)
    local.get 0
    global.get $g
    i64.add))
`
	bin, err := CompileToBinary(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := wasm.Validate(m); err != nil {
		t.Fatal(err)
	}
	s := exec.NewStore(exec.Config{})
	inst, err := s.Instantiate(m, "rt")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("f", exec.I64(47))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.AsI64(res[0]); got != 42 {
		t.Fatalf("f(47) = %d, want 42", got)
	}
}

func TestAllLoadStoreWidths(t *testing.T) {
	// Each (store, load, value, expect) case exercises one access width and
	// sign behaviour end to end through WAT + interpreter.
	cases := []struct {
		store, load string
		val, want   int64
		is64        bool
	}{
		{"i32.store8", "i32.load8_u", 0x1FF, 0xFF, false},
		{"i32.store8", "i32.load8_s", 0x80, -128, false},
		{"i32.store16", "i32.load16_u", 0x1FFFF, 0xFFFF, false},
		{"i32.store16", "i32.load16_s", 0x8000, -32768, false},
		{"i32.store", "i32.load", -1234567, -1234567, false},
		{"i64.store8", "i64.load8_u", 0x1FF, 0xFF, true},
		{"i64.store8", "i64.load8_s", 0x80, -128, true},
		{"i64.store16", "i64.load16_u", 0x1FFFF, 0xFFFF, true},
		{"i64.store16", "i64.load16_s", 0x8000, -32768, true},
		{"i64.store32", "i64.load32_u", 0x1FFFFFFFF, 0xFFFFFFFF, true},
		{"i64.store32", "i64.load32_s", 0x80000000, -2147483648, true},
		{"i64.store", "i64.load", -98765432109876, -98765432109876, true},
	}
	for _, c := range cases {
		ty := "i32"
		if c.is64 {
			ty = "i64"
		}
		src := fmt.Sprintf(`
(module
  (memory 1)
  (func (export "rt") (param %s) (result %s)
    i32.const 64
    local.get 0
    %s
    i32.const 64
    %s))
`, ty, ty, c.store, c.load)
		m, err := Compile(src)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.store, c.load, err)
		}
		s := exec.NewStore(exec.Config{})
		inst, err := s.Instantiate(m, "w")
		if err != nil {
			t.Fatal(err)
		}
		var arg exec.Value
		if c.is64 {
			arg = exec.I64(c.val)
		} else {
			arg = exec.I32(int32(c.val))
		}
		res, err := inst.Call("rt", arg)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.store, c.load, err)
		}
		var got int64
		if c.is64 {
			got = exec.AsI64(res[0])
		} else {
			got = int64(exec.AsI32(res[0]))
		}
		if got != c.want {
			t.Errorf("%s/%s(%#x) = %d, want %d", c.store, c.load, c.val, got, c.want)
		}
	}
}

func TestAssemblerNeverPanicsOnGarbage(t *testing.T) {
	inputs := []string{
		"", "(", ")", "(module", "((((", "(module))",
		`(module (func (export "f") (block (block (block)))))`,
		"(module (func br_table))",
		`(module (data (i32.const 0) "\zz"))`,
		"(module (func (param $p) ))",
		"(module (global i32))",
		"(module (table))",
		"(module (elem (i32.const 0) $nope))",
		`(module (import "a" "b" (what)))`,
		"(module (func local.get))",
		"(module (type $t (func (param bogus))))",
		"(module (start $missing))",
		"(module (func i32.const))",
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Compile(src)
		}()
	}
}

func TestCollectErrorPaths(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"bad import shape", `(module (import "only-one" (func)))`},
		{"bad import kind", `(module (import "a" "b" (event)))`},
		{"type without func", `(module (type $t (notfunc)))`},
		{"export bad kind", `(module (export "x" (event 0)))`},
		{"export shape", `(module (export "x"))`},
		{"global missing init", `(module (global $g (mut i32)))`},
		{"data non-string", `(module (memory 1) (data (i32.const 0) 42))`},
		{"elem bad offset", `(module (table 1 funcref) (func $f) (elem (f32.const 1) $f))`},
		{"limits bad", `(module (memory abc))`},
		{"const expr unsupported", `(module (global $g i32 (i32.add (i32.const 1) (i32.const 2))))`},
		{"unknown field", `(module (wibble))`},
		{"sig mismatch with type use", `(module (type $t (func (param i32))) (func (type $t) (param i64)))`},
		{"unknown type ref", `(module (func (type $missing)))`},
		{"elem unknown func", `(module (table 1 funcref) (elem (i32.const 0) $ghost))`},
		{"start unknown", `(module (start $ghost))`},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: compiled successfully", c.name)
		}
	}
}

func TestInlineImportlikeForms(t *testing.T) {
	// Imports with explicit (type $t) references.
	src := `
(module
  (type $cb (func (param i32) (result i32)))
  (import "env" "h" (func $h (type $cb)))
  (func (export "call_h") (param i32) (result i32)
    (call $h (local.get 0))))
`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Imports) != 1 || m.Imports[0].Func != 0 {
		t.Fatalf("import = %+v", m.Imports)
	}
	// Memory, table, and global imports.
	src2 := `
(module
  (import "env" "mem" (memory 1 4))
  (import "env" "tbl" (table 2 funcref))
  (import "env" "g" (global $g i32))
  (func (export "f") (result i32) (global.get $g)))
`
	m2, err := Compile(src2)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Imports) != 3 {
		t.Fatalf("imports = %d", len(m2.Imports))
	}
	if m2.Imports[0].Memory.Limits.Max != 4 || !m2.Imports[0].Memory.Limits.HasMax {
		t.Fatalf("memory limits = %+v", m2.Imports[0].Memory)
	}
}

func TestWATEmitsNameSection(t *testing.T) {
	src := `
(module
  (func $compute (export "compute") (result i32) (i32.const 1))
  (func $helper (result i32) (i32.const 2)))
`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	nm := wasm.DecodeNameSection(m)
	if nm.FuncNames[0] != "compute" || nm.FuncNames[1] != "helper" {
		t.Fatalf("func names = %v", nm.FuncNames)
	}
	// Round-trip through binary keeps the names.
	decoded, err := wasm.Decode(wasm.Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if wasm.DecodeNameSection(decoded).FuncNames[0] != "compute" {
		t.Fatal("names lost in binary round-trip")
	}
}

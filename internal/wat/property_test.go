package wat

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wasmcontainers/internal/wasm/exec"
)

// expr is a random i32 expression tree evaluated both by a Go reference
// evaluator and by compiling its folded-WAT rendering and running it on the
// interpreter. Division-free to avoid traps.
type expr struct {
	op   string // "const", "param", "add", "sub", "mul", "and", "or", "xor", "shl", "shrU"
	val  int32
	l, r *expr
}

func genExpr(rng *rand.Rand, depth int) *expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return &expr{op: "const", val: int32(rng.Uint32())}
		}
		return &expr{op: "param"}
	}
	ops := []string{"add", "sub", "mul", "and", "or", "xor", "shl", "shrU"}
	return &expr{
		op: ops[rng.Intn(len(ops))],
		l:  genExpr(rng, depth-1),
		r:  genExpr(rng, depth-1),
	}
}

func (e *expr) eval(param int32) int32 {
	switch e.op {
	case "const":
		return e.val
	case "param":
		return param
	}
	l, r := e.l.eval(param), e.r.eval(param)
	switch e.op {
	case "add":
		return l + r
	case "sub":
		return l - r
	case "mul":
		return l * r
	case "and":
		return l & r
	case "or":
		return l | r
	case "xor":
		return l ^ r
	case "shl":
		return l << (uint32(r) & 31)
	case "shrU":
		return int32(uint32(l) >> (uint32(r) & 31))
	}
	panic("bad op")
}

func (e *expr) wat() string {
	switch e.op {
	case "const":
		return fmt.Sprintf("(i32.const %d)", e.val)
	case "param":
		return "(local.get 0)"
	}
	mnemonic := map[string]string{
		"add": "i32.add", "sub": "i32.sub", "mul": "i32.mul",
		"and": "i32.and", "or": "i32.or", "xor": "i32.xor",
		"shl": "i32.shl", "shrU": "i32.shr_u",
	}[e.op]
	return fmt.Sprintf("(%s %s %s)", mnemonic, e.l.wat(), e.r.wat())
}

// TestPropertyExpressionTrees compiles 150 random expression trees through
// the full WAT -> binary -> validate -> interpret pipeline and compares the
// result against direct Go evaluation at several inputs.
func TestPropertyExpressionTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := []int32{0, 1, -1, 7, -12345, 1 << 30}
	for i := 0; i < 150; i++ {
		e := genExpr(rng, 4)
		src := fmt.Sprintf(`(module (func (export "f") (param i32) (result i32) %s))`, e.wat())
		m, err := Compile(src)
		if err != nil {
			t.Fatalf("tree %d: compile: %v\n%s", i, err, src)
		}
		s := exec.NewStore(exec.Config{})
		inst, err := s.Instantiate(m, "t")
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		for _, in := range inputs {
			res, err := inst.Call("f", exec.I32(in))
			if err != nil {
				t.Fatalf("tree %d at %d: %v", i, in, err)
			}
			if got, want := exec.AsI32(res[0]), e.eval(in); got != want {
				t.Fatalf("tree %d at %d: interpreter %d != reference %d\n%s", i, in, got, want, src)
			}
		}
	}
}

// TestPropertyDeepNesting stresses the compiler's control stack with deeply
// nested blocks.
func TestPropertyDeepNesting(t *testing.T) {
	const depth = 200
	var sb strings.Builder
	sb.WriteString(`(module (func (export "f") (result i32) `)
	for i := 0; i < depth; i++ {
		sb.WriteString("(block (result i32) ")
	}
	sb.WriteString("(i32.const 99)")
	for i := 0; i < depth; i++ {
		sb.WriteString(")")
	}
	sb.WriteString("))")
	m, err := Compile(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	s := exec.NewStore(exec.Config{})
	inst, err := s.Instantiate(m, "deep")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if exec.AsI32(res[0]) != 99 {
		t.Fatalf("deep nesting = %d", exec.AsI32(res[0]))
	}
}

// TestPropertyBranchDepths drives br through every depth of a nested block
// stack.
func TestPropertyBranchDepths(t *testing.T) {
	const levels = 12
	for target := 0; target < levels; target++ {
		var sb strings.Builder
		sb.WriteString(`(module (func (export "f") (result i32) `)
		for i := 0; i < levels; i++ {
			sb.WriteString(fmt.Sprintf("(block $b%d ", i))
		}
		// Branch to the chosen label; labels count inside-out.
		sb.WriteString(fmt.Sprintf("(br $b%d)", levels-1-target))
		for i := 0; i < levels; i++ {
			sb.WriteString(")")
		}
		sb.WriteString("(i32.const 7)))")
		m, err := Compile(sb.String())
		if err != nil {
			t.Fatalf("depth %d: %v", target, err)
		}
		s := exec.NewStore(exec.Config{})
		inst, err := s.Instantiate(m, "br")
		if err != nil {
			t.Fatal(err)
		}
		res, err := inst.Call("f")
		if err != nil {
			t.Fatalf("depth %d: %v", target, err)
		}
		if exec.AsI32(res[0]) != 7 {
			t.Fatalf("depth %d = %d", target, exec.AsI32(res[0]))
		}
	}
}

// TestPropertyLoopIterations validates loop compilation across a range of
// trip counts, including zero.
func TestPropertyLoopIterations(t *testing.T) {
	src := `
(module
  (func (export "triangle") (param $n i32) (result i32) (local $acc i32)
    block $out
      loop $top
        local.get $n
        i32.eqz
        br_if $out
        local.get $acc
        local.get $n
        i32.add
        local.set $acc
        local.get $n
        i32.const 1
        i32.sub
        local.set $n
        br $top
      end
    end
    local.get $acc))
`
	m, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	s := exec.NewStore(exec.Config{})
	inst, err := s.Instantiate(m, "loop")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int32{0, 1, 2, 10, 100, 1000} {
		res, err := inst.Call("triangle", exec.I32(n))
		if err != nil {
			t.Fatal(err)
		}
		want := n * (n + 1) / 2
		if got := exec.AsI32(res[0]); got != want {
			t.Fatalf("triangle(%d) = %d, want %d", n, got, want)
		}
	}
}

package wat

import (
	"strings"

	"wasmcontainers/internal/wasm"
)

// opcodeByName maps textual mnemonics to single-byte opcodes, built by
// inverting the wasm package's opcode-name table.
var opcodeByName = func() map[string]wasm.Opcode {
	m := make(map[string]wasm.Opcode, 200)
	for op := 0; op < 256; op++ {
		name := wasm.OpcodeName(wasm.Opcode(op))
		if !strings.HasPrefix(name, "op(") && !strings.HasPrefix(name, "misc(") {
			m[name] = wasm.Opcode(op)
		}
	}
	return m
}()

// miscByName maps 0xFC-prefixed mnemonics to sub-opcodes.
var miscByName = map[string]uint32{
	"i32.trunc_sat_f32_s": wasm.MiscI32TruncSatF32S,
	"i32.trunc_sat_f32_u": wasm.MiscI32TruncSatF32U,
	"i32.trunc_sat_f64_s": wasm.MiscI32TruncSatF64S,
	"i32.trunc_sat_f64_u": wasm.MiscI32TruncSatF64U,
	"i64.trunc_sat_f32_s": wasm.MiscI64TruncSatF32S,
	"i64.trunc_sat_f32_u": wasm.MiscI64TruncSatF32U,
	"i64.trunc_sat_f64_s": wasm.MiscI64TruncSatF64S,
	"i64.trunc_sat_f64_u": wasm.MiscI64TruncSatF64U,
	"memory.copy":         wasm.MiscMemoryCopy,
	"memory.fill":         wasm.MiscMemoryFill,
}

// naturalAlign gives the default (natural) alignment exponent per
// load/store opcode.
var naturalAlign = map[wasm.Opcode]uint32{
	wasm.OpI32Load: 2, wasm.OpI64Load: 3, wasm.OpF32Load: 2, wasm.OpF64Load: 3,
	wasm.OpI32Load8S: 0, wasm.OpI32Load8U: 0, wasm.OpI32Load16S: 1, wasm.OpI32Load16U: 1,
	wasm.OpI64Load8S: 0, wasm.OpI64Load8U: 0, wasm.OpI64Load16S: 1, wasm.OpI64Load16U: 1,
	wasm.OpI64Load32S: 2, wasm.OpI64Load32U: 2,
	wasm.OpI32Store: 2, wasm.OpI64Store: 3, wasm.OpF32Store: 2, wasm.OpF64Store: 3,
	wasm.OpI32Store8: 0, wasm.OpI32Store16: 1,
	wasm.OpI64Store8: 0, wasm.OpI64Store16: 1, wasm.OpI64Store32: 2,
}

// assembleBodies performs the second pass over all collected functions.
func (a *assembler) assembleBodies() error {
	for _, d := range a.decls {
		fa := &funcAssembler{a: a, d: d, b: &wasm.BodyBuilder{}}
		if err := fa.emitSeq(d.body); err != nil {
			return err
		}
		fa.b.End()
		a.m.Codes = append(a.m.Codes, wasm.Code{Locals: d.locals, Body: fa.b.Bytes()})
	}
	return nil
}

type funcAssembler struct {
	a      *assembler
	d      *funcDecl
	b      *wasm.BodyBuilder
	labels []string // innermost last
}

// localIndex resolves a local or parameter by name or number.
func (fa *funcAssembler) localIndex(s *sexpr) (uint32, error) {
	if strings.HasPrefix(s.atom, "$") {
		for i, n := range fa.d.paramNames {
			if n == s.atom {
				return uint32(i), nil
			}
		}
		for i, n := range fa.d.localNames {
			if n == s.atom {
				return uint32(len(fa.d.paramNames) + i), nil
			}
		}
		return 0, errAt(s, "unknown local %s", s.atom)
	}
	return parseUint32(s)
}

// labelDepth resolves a branch label by name or number.
func (fa *funcAssembler) labelDepth(s *sexpr) (uint32, error) {
	if strings.HasPrefix(s.atom, "$") {
		for i := len(fa.labels) - 1; i >= 0; i-- {
			if fa.labels[i] == s.atom {
				return uint32(len(fa.labels) - 1 - i), nil
			}
		}
		return 0, errAt(s, "unknown label %s", s.atom)
	}
	return parseUint32(s)
}

// blockType parses an optional label and (result T) annotation for
// block/loop/if forms, returning remaining items.
func (fa *funcAssembler) blockHeader(items []*sexpr) (label string, bt int64, rest []*sexpr, err error) {
	bt = wasm.BlockTypeEmpty
	if len(items) > 0 && !items[0].isList && strings.HasPrefix(items[0].atom, "$") {
		label = items[0].atom
		items = items[1:]
	}
	if len(items) > 0 && items[0].head() == "result" {
		if len(items[0].items) != 2 {
			return "", 0, nil, errAt(items[0], "block results support exactly one value")
		}
		vt, verr := valueType(items[0].items[1])
		if verr != nil {
			return "", 0, nil, verr
		}
		bt = wasm.BlockTypeOf(vt)
		items = items[1:]
	}
	return label, bt, items, nil
}

// emit assembles one instruction, handling flat atoms, folded lists, and
// structured control forms.
func (fa *funcAssembler) emit(s *sexpr) error {
	if s.isList {
		return fa.emitList(s)
	}
	// A bare atom begins a flat instruction; its immediates were consumed by
	// the caller (emitSeq) — this path only handles zero-immediate opcodes.
	return fa.emitFlat(s, nil)
}

// emitList handles a folded instruction: (op operands... immediates).
func (fa *funcAssembler) emitList(s *sexpr) error {
	if len(s.items) == 0 {
		return errAt(s, "empty expression")
	}
	head := s.items[0]
	if head.isList {
		return errAt(s, "expected instruction mnemonic")
	}
	op := head.atom
	args := s.items[1:]
	switch op {
	case "block", "loop":
		label, bt, rest, err := fa.blockHeader(args)
		if err != nil {
			return err
		}
		kind := wasm.OpBlock
		if op == "loop" {
			kind = wasm.OpLoop
		}
		fa.b.Block(kind, bt)
		fa.labels = append(fa.labels, label)
		if err := fa.emitSeq(rest); err != nil {
			return err
		}
		fa.labels = fa.labels[:len(fa.labels)-1]
		fa.b.End()
		return nil
	case "if":
		label, bt, rest, err := fa.blockHeader(args)
		if err != nil {
			return err
		}
		// Folded if: condition operand(s) first, then (then ...) and
		// optional (else ...).
		var thenForm, elseForm *sexpr
		var conds []*sexpr
		for _, it := range rest {
			switch it.head() {
			case "then":
				thenForm = it
			case "else":
				elseForm = it
			default:
				conds = append(conds, it)
			}
		}
		if thenForm != nil {
			for _, c := range conds {
				if err := fa.emitList(c); err != nil {
					return err
				}
			}
			fa.b.Block(wasm.OpIf, bt)
			fa.labels = append(fa.labels, label)
			if err := fa.emitSeq(thenForm.items[1:]); err != nil {
				return err
			}
			if elseForm != nil {
				fa.b.Op(wasm.OpElse)
				if err := fa.emitSeq(elseForm.items[1:]); err != nil {
					return err
				}
			}
			fa.labels = fa.labels[:len(fa.labels)-1]
			fa.b.End()
			return nil
		}
		// Flat-style if inside parens: (if <instrs> ... end-implied)
		fa.b.Block(wasm.OpIf, bt)
		fa.labels = append(fa.labels, label)
		if err := fa.emitSeq(rest); err != nil {
			return err
		}
		fa.labels = fa.labels[:len(fa.labels)-1]
		fa.b.End()
		return nil
	}
	// Generic folded form: operand sub-expressions first, then the
	// instruction with its atom immediates.
	var imms []*sexpr
	for _, it := range args {
		if it.isList {
			// call_indirect (type $t) is an immediate, not an operand.
			if op == "call_indirect" && it.head() == "type" {
				imms = append(imms, it)
				continue
			}
			if err := fa.emitList(it); err != nil {
				return err
			}
		} else {
			imms = append(imms, it)
		}
	}
	return fa.emitFlat(head, imms)
}

// emitSeq assembles a body sequence in flat form, where instructions are
// atoms followed by their immediates, interleaved with folded lists and
// structural keywords.
func (fa *funcAssembler) emitSeq(items []*sexpr) error {
	i := 0
	for i < len(items) {
		it := items[i]
		if it.isList {
			if err := fa.emitList(it); err != nil {
				return err
			}
			i++
			continue
		}
		op := it.atom
		switch op {
		case "block", "loop", "if":
			// Flat structured form: op [label] [(result T)] ... end
			j := i + 1
			var hdr []*sexpr
			for j < len(items) {
				if !items[j].isList && strings.HasPrefix(items[j].atom, "$") && len(hdr) == 0 {
					hdr = append(hdr, items[j])
					j++
					continue
				}
				if items[j].isList && items[j].head() == "result" && len(hdr) <= 1 {
					hdr = append(hdr, items[j])
					j++
					continue
				}
				break
			}
			label, bt, _, err := fa.blockHeader(hdr)
			if err != nil {
				return err
			}
			var kind wasm.Opcode
			switch op {
			case "block":
				kind = wasm.OpBlock
			case "loop":
				kind = wasm.OpLoop
			default:
				kind = wasm.OpIf
			}
			fa.b.Block(kind, bt)
			fa.labels = append(fa.labels, label)
			// Find matching end at the same nesting level.
			depth := 1
			k := j
			for ; k < len(items); k++ {
				if items[k].isList {
					continue
				}
				switch items[k].atom {
				case "block", "loop", "if":
					depth++
				case "end":
					depth--
				case "else":
					if depth == 1 {
						// Emit the then-part, then the else marker.
						if err := fa.emitSeq(items[j:k]); err != nil {
							return err
						}
						fa.b.Op(wasm.OpElse)
						j = k + 1
					}
					continue
				}
				if depth == 0 {
					break
				}
			}
			if depth != 0 {
				return errAt(it, "missing end for %s", op)
			}
			if err := fa.emitSeq(items[j:k]); err != nil {
				return err
			}
			fa.labels = fa.labels[:len(fa.labels)-1]
			fa.b.End()
			i = k + 1
			continue
		}
		// Regular instruction: consume its immediates.
		n := immediateCount(op)
		var imms []*sexpr
		for n > 0 && i+1 < len(items) {
			nxt := items[i+1]
			if nxt.isList {
				if op == "call_indirect" && nxt.head() == "type" {
					imms = append(imms, nxt)
					i++
					continue
				}
				break
			}
			// Stop if the atom is itself a known instruction mnemonic
			// (immediates are numbers, $names, or key=value pairs).
			_, isOp := opcodeByName[nxt.atom]
			_, isMisc := miscByName[nxt.atom]
			if (isOp || isMisc) && !strings.Contains(nxt.atom, "=") {
				break
			}
			imms = append(imms, nxt)
			i++
			n--
		}
		if err := fa.emitFlat(it, imms); err != nil {
			return err
		}
		i++
	}
	return nil
}

// immediateCount returns the maximum number of atom immediates an
// instruction mnemonic consumes in flat form.
func immediateCount(op string) int {
	switch op {
	case "br_table":
		return 64 // variadic; bounded by label depth in practice
	case "call_indirect":
		return 1
	}
	if strings.HasSuffix(op, ".const") {
		return 1
	}
	switch op {
	case "br", "br_if", "call", "local.get", "local.set", "local.tee",
		"global.get", "global.set":
		return 1
	}
	if strings.Contains(op, ".load") || strings.Contains(op, ".store") {
		return 2 // offset= and align=
	}
	return 0
}

// emitFlat assembles a single mnemonic with pre-collected atom immediates.
func (fa *funcAssembler) emitFlat(head *sexpr, imms []*sexpr) error {
	op := head.atom
	if sub, ok := miscByName[op]; ok {
		fa.b.Misc(sub)
		return nil
	}
	// Instructions with mandatory immediates must actually have them.
	switch op {
	case "i32.const", "i64.const", "f32.const", "f64.const",
		"call", "local.get", "local.set", "local.tee",
		"global.get", "global.set":
		if len(imms) != 1 {
			return errAt(head, "%s requires exactly one immediate", op)
		}
	}
	switch op {
	case "i32.const":
		v, err := parseInt32(imms[0])
		if err != nil {
			return err
		}
		fa.b.I32Const(v)
		return nil
	case "i64.const":
		v, err := parseInt64(imms[0])
		if err != nil {
			return err
		}
		fa.b.I64Const(v)
		return nil
	case "f32.const":
		v, err := parseFloat(imms[0])
		if err != nil {
			return err
		}
		fa.b.F32Const(float32(v))
		return nil
	case "f64.const":
		v, err := parseFloat(imms[0])
		if err != nil {
			return err
		}
		fa.b.F64Const(v)
		return nil
	case "br", "br_if":
		if len(imms) != 1 {
			return errAt(head, "%s needs a label", op)
		}
		d, err := fa.labelDepth(imms[0])
		if err != nil {
			return err
		}
		kind := wasm.OpBr
		if op == "br_if" {
			kind = wasm.OpBrIf
		}
		fa.b.OpU32(kind, d)
		return nil
	case "br_table":
		if len(imms) < 1 {
			return errAt(head, "br_table needs labels")
		}
		var depths []uint32
		for _, im := range imms {
			d, err := fa.labelDepth(im)
			if err != nil {
				return err
			}
			depths = append(depths, d)
		}
		fa.b.BrTable(depths[:len(depths)-1], depths[len(depths)-1])
		return nil
	case "call":
		fi, err := fa.a.funcIndex(imms[0])
		if err != nil {
			return err
		}
		fa.b.OpU32(wasm.OpCall, fi)
		return nil
	case "call_indirect":
		ti := uint32(0)
		if len(imms) == 1 {
			if imms[0].isList && imms[0].head() == "type" {
				var err error
				ti, err = fa.a.typeIndex(imms[0].items[1])
				if err != nil {
					return err
				}
			} else {
				var err error
				ti, err = parseUint32(imms[0])
				if err != nil {
					return err
				}
			}
		}
		fa.b.CallIndirect(ti)
		return nil
	case "local.get", "local.set", "local.tee":
		li, err := fa.localIndex(imms[0])
		if err != nil {
			return err
		}
		var kind wasm.Opcode
		switch op {
		case "local.get":
			kind = wasm.OpLocalGet
		case "local.set":
			kind = wasm.OpLocalSet
		default:
			kind = wasm.OpLocalTee
		}
		fa.b.OpU32(kind, li)
		return nil
	case "global.get", "global.set":
		gi, err := fa.a.globalIndex(imms[0])
		if err != nil {
			return err
		}
		kind := wasm.OpGlobalGet
		if op == "global.set" {
			kind = wasm.OpGlobalSet
		}
		fa.b.OpU32(kind, gi)
		return nil
	case "memory.size":
		fa.b.MemoryOp(wasm.OpMemorySize)
		return nil
	case "memory.grow":
		fa.b.MemoryOp(wasm.OpMemoryGrow)
		return nil
	case "else":
		fa.b.Op(wasm.OpElse)
		return nil
	case "end":
		fa.b.End()
		return nil
	case "nop":
		fa.b.Op(wasm.OpNop)
		return nil
	}
	code, ok := opcodeByName[op]
	if !ok {
		return errAt(head, "unknown instruction %q", op)
	}
	if na, isMem := naturalAlign[code]; isMem {
		offset := uint32(0)
		align := na
		for _, im := range imms {
			txt := im.atom
			switch {
			case strings.HasPrefix(txt, "offset="):
				v, err := parseUint32(&sexpr{atom: txt[len("offset="):], line: im.line, col: im.col})
				if err != nil {
					return err
				}
				offset = v
			case strings.HasPrefix(txt, "align="):
				v, err := parseUint32(&sexpr{atom: txt[len("align="):], line: im.line, col: im.col})
				if err != nil {
					return err
				}
				// The binary stores log2(align).
				exp := uint32(0)
				for 1<<exp < v {
					exp++
				}
				align = exp
			default:
				return errAt(im, "unexpected memarg %q", txt)
			}
		}
		fa.b.MemArg(code, align, offset)
		return nil
	}
	fa.b.Op(code)
	return nil
}

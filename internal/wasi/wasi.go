// Package wasi implements the wasi_snapshot_preview1 system interface on
// top of the exec VM and the vfs in-memory filesystem: command-line
// arguments, environment variables, stdio, preopened directories, file I/O,
// clocks, randomness, and process exit. The clock and random sources are
// injectable so container runs are fully deterministic under the discrete
// event simulator.
package wasi

import (
	"encoding/binary"
	"io"
	"math/rand"
	"path"
	"sort"

	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
)

// ModuleName is the import module name guests use.
const ModuleName = "wasi_snapshot_preview1"

// WASI errno values (subset used by this implementation).
const (
	ErrnoSuccess  uint32 = 0
	ErrnoBadf     uint32 = 8
	ErrnoExist    uint32 = 20
	ErrnoFault    uint32 = 21
	ErrnoInval    uint32 = 28
	ErrnoIO       uint32 = 29
	ErrnoIsdir    uint32 = 31
	ErrnoNoent    uint32 = 44
	ErrnoNosys    uint32 = 52
	ErrnoNotdir   uint32 = 54
	ErrnoNotempty uint32 = 55
	ErrnoSpipe    uint32 = 70
	ErrnoNotsup   uint32 = 58
)

// WASI filetype values.
const (
	filetypeUnknown      = 0
	filetypeDirectory    = 3
	filetypeRegularFile  = 4
	filetypeCharacterDev = 2
)

// Preopen maps a guest path to a directory in a filesystem.
type Preopen struct {
	GuestPath string
	FS        *vfs.FS
	HostPath  string
}

// Config configures one WASI instance (one "process").
type Config struct {
	Args []string
	Env  []string // "KEY=VALUE" entries
	// Stdin supplies fd 0; nil means always-EOF.
	Stdin io.Reader
	// Stdout and Stderr receive fd 1 and 2 writes; nil discards.
	Stdout io.Writer
	Stderr io.Writer
	// Preopens are mounted after the three stdio fds, in order, at fd 3+.
	Preopens []Preopen
	// Now returns the current time in nanoseconds; nil yields a fixed epoch.
	Now func() uint64
	// RandSeed seeds the deterministic random_get source.
	RandSeed int64
}

type fdKind int

const (
	fdStdin fdKind = iota
	fdStdout
	fdStderr
	fdDir
	fdFile
)

type fdEntry struct {
	kind      fdKind
	file      *vfs.File
	fs        *vfs.FS
	dirPath   string // absolute path within fs for directories
	preopen   string // guest path if this is a preopened root
	isPreopen bool
}

// P1 is a wasi_snapshot_preview1 implementation bound to one module
// instance ("process").
type P1 struct {
	cfg    Config
	fds    map[int32]*fdEntry
	nextFD int32
	rng    *rand.Rand
	// BytesWritten counts fd_write traffic (telemetry for benchmarks).
	BytesWritten int64
	// Exited is set when proc_exit was called.
	Exited   bool
	ExitCode uint32

	// Telemetry handles, nil when observation is disabled (SetObserver):
	// the syscall hot paths then cost one nil check each, no allocations.
	obsWriteBytes *obs.Counter
	obsReadBytes  *obs.Counter
	obsRandBytes  *obs.Counter
	obsExits      *obs.Counter
}

// SetObserver wires telemetry counters for the WASI syscall surface: bytes
// moved through fd_write/fd_read, random_get entropy served, and proc_exit
// calls. Pass nil to disable (the default).
func (w *P1) SetObserver(t *obs.Telemetry) {
	if t == nil {
		w.obsWriteBytes, w.obsReadBytes, w.obsRandBytes, w.obsExits = nil, nil, nil, nil
		return
	}
	w.obsWriteBytes = t.Counter("wasi_fd_write_bytes_total")
	w.obsReadBytes = t.Counter("wasi_fd_read_bytes_total")
	w.obsRandBytes = t.Counter("wasi_random_bytes_total")
	w.obsExits = t.Counter("wasi_proc_exits_total")
}

// New creates a WASI instance from cfg.
func New(cfg Config) *P1 {
	w := &P1{
		cfg:    cfg,
		fds:    make(map[int32]*fdEntry),
		rng:    rand.New(rand.NewSource(cfg.RandSeed)),
		nextFD: 3,
	}
	w.fds[0] = &fdEntry{kind: fdStdin}
	w.fds[1] = &fdEntry{kind: fdStdout}
	w.fds[2] = &fdEntry{kind: fdStderr}
	for _, p := range cfg.Preopens {
		w.fds[w.nextFD] = &fdEntry{
			kind: fdDir, fs: p.FS, dirPath: path.Clean("/" + p.HostPath),
			preopen: p.GuestPath, isPreopen: true,
		}
		w.nextFD++
	}
	return w
}

func (w *P1) now() uint64 {
	if w.cfg.Now != nil {
		return w.cfg.Now()
	}
	return 1_600_000_000_000_000_000 // fixed epoch for determinism
}

// Register installs the host module into the store.
func (w *P1) Register(s *exec.Store) {
	hm := s.NewHostModule(ModuleName)
	i32 := wasm.ValueTypeI32
	i64 := wasm.ValueTypeI64
	sig := func(params ...wasm.ValueType) wasm.FuncType {
		return wasm.FuncType{Params: params, Results: []wasm.ValueType{i32}}
	}
	add := func(name string, t wasm.FuncType, fn func(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error)) {
		hm.AddFunc(name, exec.HostFunc{Type: t, Fn: fn})
	}

	add("args_sizes_get", sig(i32, i32), w.argsSizesGet)
	add("args_get", sig(i32, i32), w.argsGet)
	add("environ_sizes_get", sig(i32, i32), w.environSizesGet)
	add("environ_get", sig(i32, i32), w.environGet)
	add("clock_time_get", sig(i32, i64, i32), w.clockTimeGet)
	add("clock_res_get", sig(i32, i32), w.clockResGet)
	add("fd_write", sig(i32, i32, i32, i32), w.fdWrite)
	add("fd_read", sig(i32, i32, i32, i32), w.fdRead)
	add("fd_close", sig(i32), w.fdClose)
	add("fd_seek", sig(i32, i64, i32, i32), w.fdSeek)
	add("fd_fdstat_get", sig(i32, i32), w.fdFdstatGet)
	add("fd_fdstat_set_flags", sig(i32, i32), w.fdFdstatSetFlags)
	add("fd_prestat_get", sig(i32, i32), w.fdPrestatGet)
	add("fd_prestat_dir_name", sig(i32, i32, i32), w.fdPrestatDirName)
	add("fd_filestat_get", sig(i32, i32), w.fdFilestatGet)
	add("path_open", sig(i32, i32, i32, i32, i32, i64, i64, i32, i32), w.pathOpen)
	add("fd_readdir", sig(i32, i32, i32, i64, i32), w.fdReaddir)
	add("path_filestat_get", sig(i32, i32, i32, i32, i32), w.pathFilestatGet)
	add("path_create_directory", sig(i32, i32, i32), w.pathCreateDirectory)
	add("path_unlink_file", sig(i32, i32, i32), w.pathUnlinkFile)
	add("path_remove_directory", sig(i32, i32, i32), w.pathRemoveDirectory)
	add("random_get", sig(i32, i32), w.randomGet)
	add("poll_oneoff", sig(i32, i32, i32, i32), w.pollOneoff)
	add("sched_yield", sig(), w.schedYield)
	hm.AddFunc("proc_exit", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValueType{i32}},
		Fn:   w.procExit,
	})
}

func errnoVal(e uint32) []exec.Value { return []exec.Value{uint64(e)} }

// argsSizesGet writes argc and the total buffer size.
func (w *P1) argsSizesGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	total := 0
	for _, a := range w.cfg.Args {
		total += len(a) + 1
	}
	mem := ctx.Memory
	if !mem.WriteUint32(exec.AsU32(args[0]), uint32(len(w.cfg.Args))) ||
		!mem.WriteUint32(exec.AsU32(args[1]), uint32(total)) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) argsGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	return w.writeStringList(ctx, w.cfg.Args, exec.AsU32(args[0]), exec.AsU32(args[1]))
}

func (w *P1) environSizesGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	total := 0
	for _, e := range w.cfg.Env {
		total += len(e) + 1
	}
	mem := ctx.Memory
	if !mem.WriteUint32(exec.AsU32(args[0]), uint32(len(w.cfg.Env))) ||
		!mem.WriteUint32(exec.AsU32(args[1]), uint32(total)) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) environGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	return w.writeStringList(ctx, w.cfg.Env, exec.AsU32(args[0]), exec.AsU32(args[1]))
}

// nulByte is the string terminator written after each list entry; a package
// variable so writeStringList stays allocation-free per string.
var nulByte = [1]byte{0}

func (w *P1) writeStringList(ctx *exec.HostContext, list []string, ptrs, buf uint32) ([]exec.Value, error) {
	mem := ctx.Memory
	off := buf
	for i, s := range list {
		if !mem.WriteUint32(ptrs+uint32(i*4), off) {
			return errnoVal(ErrnoFault), nil
		}
		if !mem.WriteString(off, s) || !mem.Write(off+uint32(len(s)), nulByte[:]) {
			return errnoVal(ErrnoFault), nil
		}
		off += uint32(len(s)) + 1
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) clockTimeGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	if !ctx.Memory.WriteUint64(exec.AsU32(args[2]), w.now()) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) clockResGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	if !ctx.Memory.WriteUint64(exec.AsU32(args[1]), 1000) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

// readIOVecs gathers the guest's iovec array into slices of guest memory.
// writable selects WritableView for host functions that fill the buffers
// (fd_read): writes into guest memory must land in the dirty-page bitmap or
// the copy-on-write reset would miss them.
func readIOVecs(mem *exec.Memory, iovs, iovsLen uint32, writable bool) ([][]byte, bool) {
	out := make([][]byte, 0, iovsLen)
	for i := uint32(0); i < iovsLen; i++ {
		base, ok1 := mem.ReadUint32(iovs + i*8)
		length, ok2 := mem.ReadUint32(iovs + i*8 + 4)
		if !ok1 || !ok2 {
			return nil, false
		}
		var view []byte
		var ok bool
		if writable {
			view, ok = mem.WritableView(base, length)
		} else {
			view, ok = mem.View(base, length)
		}
		if !ok {
			return nil, false
		}
		out = append(out, view)
	}
	return out, true
}

func (w *P1) fdWrite(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok {
		return errnoVal(ErrnoBadf), nil
	}
	vecs, okv := readIOVecs(ctx.Memory, exec.AsU32(args[1]), exec.AsU32(args[2]), false)
	if !okv {
		return errnoVal(ErrnoFault), nil
	}
	var written int
	for _, v := range vecs {
		n, err := w.writeTo(ent, v)
		written += n
		if err != nil {
			break
		}
	}
	w.BytesWritten += int64(written)
	w.obsWriteBytes.Add(int64(written))
	if !ctx.Memory.WriteUint32(exec.AsU32(args[3]), uint32(written)) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) writeTo(ent *fdEntry, b []byte) (int, error) {
	switch ent.kind {
	case fdStdout:
		if w.cfg.Stdout != nil {
			return w.cfg.Stdout.Write(b)
		}
		return len(b), nil
	case fdStderr:
		if w.cfg.Stderr != nil {
			return w.cfg.Stderr.Write(b)
		}
		return len(b), nil
	case fdFile:
		return ent.file.Write(b)
	default:
		return 0, vfs.ErrReadOnly
	}
}

func (w *P1) fdRead(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok {
		return errnoVal(ErrnoBadf), nil
	}
	vecs, okv := readIOVecs(ctx.Memory, exec.AsU32(args[1]), exec.AsU32(args[2]), true)
	if !okv {
		return errnoVal(ErrnoFault), nil
	}
	var total int
	for _, v := range vecs {
		var n int
		var err error
		switch ent.kind {
		case fdStdin:
			if w.cfg.Stdin == nil {
				err = io.EOF
			} else {
				n, err = w.cfg.Stdin.Read(v)
			}
		case fdFile:
			n, err = ent.file.Read(v)
		default:
			return errnoVal(ErrnoIsdir), nil
		}
		total += n
		if err != nil {
			break
		}
		if n < len(v) {
			break
		}
	}
	w.obsReadBytes.Add(int64(total))
	if !ctx.Memory.WriteUint32(exec.AsU32(args[3]), uint32(total)) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) fdClose(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok {
		return errnoVal(ErrnoBadf), nil
	}
	if ent.file != nil {
		ent.file.Close()
	}
	delete(w.fds, fd)
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) fdSeek(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok {
		return errnoVal(ErrnoBadf), nil
	}
	if ent.kind != fdFile {
		return errnoVal(ErrnoSpipe), nil
	}
	pos, err := ent.file.Seek(exec.AsI64(args[1]), int(exec.AsU32(args[2])))
	if err != nil {
		return errnoVal(ErrnoInval), nil
	}
	if !ctx.Memory.WriteUint64(exec.AsU32(args[3]), uint64(pos)) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) fdFdstatGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok {
		return errnoVal(ErrnoBadf), nil
	}
	var buf [24]byte
	switch ent.kind {
	case fdDir:
		buf[0] = filetypeDirectory
	case fdFile:
		buf[0] = filetypeRegularFile
	default:
		buf[0] = filetypeCharacterDev
	}
	// fs_flags, rights_base, rights_inheriting: permissive defaults.
	binary.LittleEndian.PutUint64(buf[8:], ^uint64(0))
	binary.LittleEndian.PutUint64(buf[16:], ^uint64(0))
	if !ctx.Memory.Write(exec.AsU32(args[1]), buf[:]) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) fdFdstatSetFlags(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) fdPrestatGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok || !ent.isPreopen {
		return errnoVal(ErrnoBadf), nil
	}
	var buf [8]byte
	buf[0] = 0 // preopentype::dir
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(ent.preopen)))
	if !ctx.Memory.Write(exec.AsU32(args[1]), buf[:]) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) fdPrestatDirName(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok || !ent.isPreopen {
		return errnoVal(ErrnoBadf), nil
	}
	name := []byte(ent.preopen)
	n := exec.AsU32(args[2])
	if int(n) < len(name) {
		return errnoVal(ErrnoInval), nil
	}
	if !ctx.Memory.Write(exec.AsU32(args[1]), name) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

// writeFilestat fills a WASI filestat struct (64 bytes).
func writeFilestat(mem *exec.Memory, ptr uint32, info vfs.FileInfo, now uint64) bool {
	var buf [64]byte
	binary.LittleEndian.PutUint64(buf[0:], 1) // device
	binary.LittleEndian.PutUint64(buf[8:], uint64(hashName(info.Name)))
	if info.IsDir {
		buf[16] = filetypeDirectory
	} else {
		buf[16] = filetypeRegularFile
	}
	binary.LittleEndian.PutUint64(buf[24:], 1) // nlink
	binary.LittleEndian.PutUint64(buf[32:], uint64(info.Size))
	binary.LittleEndian.PutUint64(buf[40:], now) // atim
	binary.LittleEndian.PutUint64(buf[48:], now) // mtim
	binary.LittleEndian.PutUint64(buf[56:], now) // ctim
	return mem.Write(ptr, buf[:])
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (w *P1) fdFilestatGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok {
		return errnoVal(ErrnoBadf), nil
	}
	var info vfs.FileInfo
	switch ent.kind {
	case fdFile:
		info = vfs.FileInfo{Name: ent.file.Name(), Size: ent.file.Size()}
	case fdDir:
		info = vfs.FileInfo{Name: ent.dirPath, IsDir: true}
	default:
		info = vfs.FileInfo{Name: "tty"}
	}
	if !writeFilestat(ctx.Memory, exec.AsU32(args[1]), info, w.now()) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

// resolvePath joins a directory fd with a guest-relative path.
func (w *P1) resolvePath(ctx *exec.HostContext, dirfd int32, ptr, length uint32) (*vfs.FS, string, uint32) {
	ent, ok := w.fds[dirfd]
	if !ok || ent.kind != fdDir {
		return nil, "", ErrnoBadf
	}
	rel, okr := ctx.Memory.ReadString(ptr, length)
	if !okr {
		return nil, "", ErrnoFault
	}
	return ent.fs, path.Join(ent.dirPath, rel), ErrnoSuccess
}

// WASI oflags.
const (
	oflagCreat     = 1
	oflagDirectory = 2
	oflagExcl      = 4
	oflagTrunc     = 8
)

// WASI fdflags.
const fdflagAppend = 1

func (w *P1) pathOpen(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fsys, full, errno := w.resolvePath(ctx, int32(exec.AsU32(args[0])), exec.AsU32(args[2]), exec.AsU32(args[3]))
	if errno != ErrnoSuccess {
		return errnoVal(errno), nil
	}
	oflags := exec.AsU32(args[4])
	fdflags := exec.AsU32(args[7])

	// Directory open?
	if info, err := fsys.Stat(full); err == nil && info.IsDir {
		fd := w.nextFD
		w.nextFD++
		w.fds[fd] = &fdEntry{kind: fdDir, fs: fsys, dirPath: full}
		if !ctx.Memory.WriteUint32(exec.AsU32(args[8]), uint32(fd)) {
			return errnoVal(ErrnoFault), nil
		}
		return errnoVal(ErrnoSuccess), nil
	}
	if oflags&oflagDirectory != 0 {
		return errnoVal(ErrnoNotdir), nil
	}

	flags := vfs.O_RDWR
	if oflags&oflagCreat != 0 {
		flags |= vfs.O_CREATE
	}
	if oflags&oflagExcl != 0 {
		flags |= vfs.O_EXCL
	}
	if oflags&oflagTrunc != 0 {
		flags |= vfs.O_TRUNC
	}
	if fdflags&fdflagAppend != 0 {
		flags |= vfs.O_APPEND
	}
	f, err := fsys.Open(full, flags)
	if err != nil {
		return errnoVal(mapVFSError(err)), nil
	}
	fd := w.nextFD
	w.nextFD++
	w.fds[fd] = &fdEntry{kind: fdFile, fs: fsys, file: f}
	if !ctx.Memory.WriteUint32(exec.AsU32(args[8]), uint32(fd)) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func mapVFSError(err error) uint32 {
	switch {
	case err == nil:
		return ErrnoSuccess
	case contains(err, vfs.ErrNotExist):
		return ErrnoNoent
	case contains(err, vfs.ErrExist):
		return ErrnoExist
	case contains(err, vfs.ErrIsDir):
		return ErrnoIsdir
	case contains(err, vfs.ErrNotDir):
		return ErrnoNotdir
	case contains(err, vfs.ErrNotEmpty):
		return ErrnoNotempty
	default:
		return ErrnoIO
	}
}

func contains(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func (w *P1) pathFilestatGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fsys, full, errno := w.resolvePath(ctx, int32(exec.AsU32(args[0])), exec.AsU32(args[2]), exec.AsU32(args[3]))
	if errno != ErrnoSuccess {
		return errnoVal(errno), nil
	}
	info, err := fsys.Stat(full)
	if err != nil {
		return errnoVal(mapVFSError(err)), nil
	}
	if !writeFilestat(ctx.Memory, exec.AsU32(args[4]), info, w.now()) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) pathCreateDirectory(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fsys, full, errno := w.resolvePath(ctx, int32(exec.AsU32(args[0])), exec.AsU32(args[1]), exec.AsU32(args[2]))
	if errno != ErrnoSuccess {
		return errnoVal(errno), nil
	}
	if err := fsys.Mkdir(full); err != nil {
		return errnoVal(mapVFSError(err)), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) pathUnlinkFile(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fsys, full, errno := w.resolvePath(ctx, int32(exec.AsU32(args[0])), exec.AsU32(args[1]), exec.AsU32(args[2]))
	if errno != ErrnoSuccess {
		return errnoVal(errno), nil
	}
	if info, err := fsys.Stat(full); err == nil && info.IsDir {
		return errnoVal(ErrnoIsdir), nil
	}
	if err := fsys.Remove(full); err != nil {
		return errnoVal(mapVFSError(err)), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) pathRemoveDirectory(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fsys, full, errno := w.resolvePath(ctx, int32(exec.AsU32(args[0])), exec.AsU32(args[1]), exec.AsU32(args[2]))
	if errno != ErrnoSuccess {
		return errnoVal(errno), nil
	}
	if info, err := fsys.Stat(full); err == nil && !info.IsDir {
		return errnoVal(ErrnoNotdir), nil
	}
	if err := fsys.Remove(full); err != nil {
		return errnoVal(mapVFSError(err)), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

// fdReaddir serializes directory entries in WASI dirent format, resuming
// from the given cookie (entry index).
func (w *P1) fdReaddir(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	fd := int32(exec.AsU32(args[0]))
	ent, ok := w.fds[fd]
	if !ok {
		return errnoVal(ErrnoBadf), nil
	}
	if ent.kind != fdDir {
		return errnoVal(ErrnoNotdir), nil
	}
	entries, err := ent.fs.ReadDir(ent.dirPath)
	if err != nil {
		return errnoVal(mapVFSError(err)), nil
	}
	bufPtr := exec.AsU32(args[1])
	bufLen := exec.AsU32(args[2])
	cookie := exec.AsI64(args[3])

	var out []byte
	for i := int64(0); i < int64(len(entries)); i++ {
		if i < cookie {
			continue
		}
		e := entries[i]
		var dirent [24]byte
		binary.LittleEndian.PutUint64(dirent[0:], uint64(i+1)) // d_next cookie
		binary.LittleEndian.PutUint64(dirent[8:], uint64(hashName(e.Name)))
		binary.LittleEndian.PutUint32(dirent[16:], uint32(len(e.Name)))
		if e.IsDir {
			dirent[20] = filetypeDirectory
		} else {
			dirent[20] = filetypeRegularFile
		}
		out = append(out, dirent[:]...)
		out = append(out, e.Name...)
		if uint32(len(out)) >= bufLen {
			out = out[:bufLen] // truncated final entry signals "buffer full"
			break
		}
	}
	if !ctx.Memory.Write(bufPtr, out) {
		return errnoVal(ErrnoFault), nil
	}
	if !ctx.Memory.WriteUint32(exec.AsU32(args[4]), uint32(len(out))) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) randomGet(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	// Fill guest memory in place: WritableView marks the pages dirty and
	// avoids a per-call staging allocation.
	buf, ok := ctx.Memory.WritableView(exec.AsU32(args[0]), exec.AsU32(args[1]))
	if !ok {
		return errnoVal(ErrnoFault), nil
	}
	w.rng.Read(buf)
	w.obsRandBytes.Add(int64(len(buf)))
	return errnoVal(ErrnoSuccess), nil
}

// WASI subscription/event tags.
const (
	eventtypeClock   = 0
	eventtypeFdRead  = 1
	eventtypeFdWrite = 2
)

// pollOneoff implements the subset guests use for sleeps and readiness
// polling: clock subscriptions complete immediately (simulated time is
// driven by the discrete-event engine, so a guest "sleep" costs no wall
// time), and fd_read/fd_write subscriptions report ready. Each input
// subscription (48 bytes) produces one event (32 bytes).
func (w *P1) pollOneoff(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	in := exec.AsU32(args[0])
	out := exec.AsU32(args[1])
	nsubs := exec.AsU32(args[2])
	if nsubs == 0 {
		return errnoVal(ErrnoInval), nil
	}
	mem := ctx.Memory
	written := uint32(0)
	for i := uint32(0); i < nsubs; i++ {
		// View, not Read: the subscription bytes are decoded immediately, so
		// aliasing guest memory avoids a 48-byte allocation per subscription.
		sub, ok := mem.View(in+i*48, 48)
		if !ok {
			return errnoVal(ErrnoFault), nil
		}
		userdata := binary.LittleEndian.Uint64(sub[0:])
		tag := sub[8]
		var ev [32]byte
		binary.LittleEndian.PutUint64(ev[0:], userdata)
		binary.LittleEndian.PutUint16(ev[8:], uint16(ErrnoSuccess))
		ev[10] = tag
		if tag == eventtypeFdRead || tag == eventtypeFdWrite {
			// fd readiness: report one byte available.
			binary.LittleEndian.PutUint64(ev[16:], 1)
		}
		if !mem.Write(out+i*32, ev[:]) {
			return errnoVal(ErrnoFault), nil
		}
		written++
	}
	if !mem.WriteUint32(exec.AsU32(args[3]), written) {
		return errnoVal(ErrnoFault), nil
	}
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) schedYield(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	return errnoVal(ErrnoSuccess), nil
}

func (w *P1) procExit(ctx *exec.HostContext, args []exec.Value) ([]exec.Value, error) {
	w.Exited = true
	w.ExitCode = exec.AsU32(args[0])
	w.obsExits.Inc()
	return nil, &exec.ExitError{Code: w.ExitCode}
}

// SortedExtensions returns the registered host function names (testing aid).
func SortedExtensions() []string {
	names := []string{
		"args_sizes_get", "args_get", "environ_sizes_get", "environ_get",
		"clock_time_get", "clock_res_get", "fd_write", "fd_read", "fd_close",
		"fd_seek", "fd_fdstat_get", "fd_fdstat_set_flags", "fd_prestat_get",
		"fd_prestat_dir_name", "fd_filestat_get", "fd_readdir", "path_open",
		"path_filestat_get", "path_create_directory", "path_unlink_file",
		"path_remove_directory", "poll_oneoff", "random_get", "sched_yield",
		"proc_exit",
	}
	sort.Strings(names)
	return names
}

// RunResult captures the outcome of running a WASI command module.
type RunResult struct {
	ExitCode     uint32
	Instructions uint64
	MemoryPages  uint32
	// PrivatePages counts the linear-memory pages the run dirtied relative
	// to the module's shared baseline image (the post-instantiation
	// contents): the copy-on-write private cost of this execution.
	PrivatePages uint32
	BytesWritten int64
}

// Run instantiates a validated command module with this WASI instance and
// invokes its _start export. A clean return or proc_exit(0) yields exit
// code 0. Bodies are compiled on the spot; callers holding a shared
// precompiled artifact should use RunModule.
func (w *P1) Run(store *exec.Store, m *wasm.Module) (RunResult, error) {
	mc, err := exec.Precompile(m)
	if err != nil {
		return RunResult{}, err
	}
	return w.RunModule(store, mc)
}

// RunModule is Run for a precompiled (typically cache-shared) module: the
// instance gets fresh state but reuses the compiled bodies.
func (w *P1) RunModule(store *exec.Store, mc *exec.ModuleCode) (RunResult, error) {
	w.Register(store)
	before := store.InstructionCount()
	inst, err := store.InstantiateCompiled(mc, "")
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return w.result(store, inst, before, ee.Code), nil
		}
		return RunResult{}, err
	}
	// Share the post-instantiation memory as the module's baseline image:
	// _start then dirties only the pages it writes, and N containers of one
	// digest alias one copy of the clean pages (PrivatePages reports the
	// divergence).
	if m := inst.Memory(); m != nil {
		mc.EnsureBaseline(m)
	}
	_, err = inst.Call("_start")
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return w.result(store, inst, before, ee.Code), nil
		}
		return RunResult{}, err
	}
	return w.result(store, inst, before, 0), nil
}

func (w *P1) result(store *exec.Store, inst *exec.Instance, before uint64, code uint32) RunResult {
	res := RunResult{
		ExitCode:     code,
		Instructions: store.InstructionCount() - before,
		BytesWritten: w.BytesWritten,
	}
	if inst != nil && inst.Memory() != nil {
		res.MemoryPages = inst.Memory().Pages()
		res.PrivatePages = uint32(inst.Memory().DirtyPages())
	}
	return res
}

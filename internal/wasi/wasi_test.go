package wasi

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/wat"
	"wasmcontainers/internal/workloads"
)

func runWorkload(t *testing.T, name string, cfg Config) (RunResult, *P1) {
	t.Helper()
	m, err := workloads.Module(name)
	if err != nil {
		t.Fatalf("workload %s: %v", name, err)
	}
	w := New(cfg)
	store := exec.NewStore(exec.Config{})
	res, err := w.Run(store, m)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return res, w
}

func TestMinimalServicePrintsBanner(t *testing.T) {
	var out bytes.Buffer
	res, _ := runWorkload(t, "minimal-service", Config{Stdout: &out})
	if res.ExitCode != 0 {
		t.Fatalf("exit code = %d", res.ExitCode)
	}
	if out.String() != "service ready\n" {
		t.Fatalf("stdout = %q", out.String())
	}
	if res.Instructions == 0 {
		t.Fatal("no instructions counted")
	}
	if res.MemoryPages != 1 {
		t.Fatalf("memory pages = %d, want 1", res.MemoryPages)
	}
}

func TestEchoArgs(t *testing.T) {
	var out bytes.Buffer
	res, _ := runWorkload(t, "echo-args", Config{
		Args:   []string{"svc", "--listen", ":8080"},
		Stdout: &out,
	})
	if res.ExitCode != 0 {
		t.Fatalf("exit code = %d", res.ExitCode)
	}
	want := "svc\n--listen\n:8080\n"
	if out.String() != want {
		t.Fatalf("stdout = %q, want %q", out.String(), want)
	}
}

func TestFileIOThroughPreopen(t *testing.T) {
	fsys := vfs.New()
	if err := fsys.MkdirAll("/data"); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	res, _ := runWorkload(t, "file-io", Config{
		Stdout:   &out,
		Preopens: []Preopen{{GuestPath: "/data", FS: fsys, HostPath: "/data"}},
	})
	if res.ExitCode != 0 {
		t.Fatalf("exit code = %d", res.ExitCode)
	}
	if out.String() != "ok\n" {
		t.Fatalf("stdout = %q", out.String())
	}
	data, err := fsys.ReadFile("/data/state.bin")
	if err != nil {
		t.Fatalf("file not created: %v", err)
	}
	if string(data) != "persisted-payload" {
		t.Fatalf("file contents = %q", data)
	}
}

func TestEnvironAndClock(t *testing.T) {
	// A handwritten module is overkill here; drive the host functions
	// directly through a tiny harness module instead.
	src := `
(module
  (import "wasi_snapshot_preview1" "environ_sizes_get" (func $es (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "environ_get" (func $eg (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "clock_time_get" (func $ct (param i32 i64 i32) (result i32)))
  (memory (export "memory") 1)
  (func (export "_start")
    (call $es (i32.const 0) (i32.const 4)) drop
    (call $eg (i32.const 8) (i32.const 64)) drop
    (call $ct (i32.const 0) (i64.const 0) (i32.const 256)) drop))
`
	m := compileWat(t, src)
	w := New(Config{
		Env: []string{"PATH=/bin", "MODE=test"},
		Now: func() uint64 { return 42_000_000_000 },
	})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	mem := inst.Memory()
	if c, _ := mem.ReadUint32(0); c != 2 {
		t.Fatalf("environ count = %d, want 2", c)
	}
	if sz, _ := mem.ReadUint32(4); sz != uint32(len("PATH=/bin")+1+len("MODE=test")+1) {
		t.Fatalf("environ buf size = %d", sz)
	}
	// First env string.
	p0, _ := mem.ReadUint32(8)
	s, _ := mem.ReadString(p0, uint32(len("PATH=/bin")))
	if s != "PATH=/bin" {
		t.Fatalf("env[0] = %q", s)
	}
	if ts, _ := mem.ReadUint64(256); ts != 42_000_000_000 {
		t.Fatalf("clock = %d", ts)
	}
}

func TestRandomGetDeterministic(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "random_get" (func $rg (param i32 i32) (result i32)))
  (memory (export "memory") 1)
  (func (export "_start")
    (call $rg (i32.const 0) (i32.const 16)) drop))
`
	m := compileWat(t, src)
	get := func(seed int64) []byte {
		w := New(Config{RandSeed: seed})
		store := exec.NewStore(exec.Config{})
		w.Register(store)
		inst, err := store.Instantiate(m, "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.Call("_start"); err != nil {
			t.Fatal(err)
		}
		b, _ := inst.Memory().Read(0, 16)
		return b
	}
	a, b := get(7), get(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different bytes")
	}
	c := get(8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical bytes")
	}
}

func TestProcExitCode(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "proc_exit" (func $pe (param i32)))
  (memory 1)
  (func (export "_start")
    (call $pe (i32.const 3))))
`
	m := compileWat(t, src)
	w := New(Config{})
	store := exec.NewStore(exec.Config{})
	res, err := w.Run(store, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 3 {
		t.Fatalf("exit code = %d, want 3", res.ExitCode)
	}
	if !w.Exited {
		t.Fatal("Exited not set")
	}
}

func TestBadFDErrno(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "fd_write" (func $fw (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (global $errno (export "errno") (mut i32) (i32.const 0))
  (func (export "_start")
    (global.set $errno
      (call $fw (i32.const 99) (i32.const 0) (i32.const 0) (i32.const 8)))))
`
	m := compileWat(t, src)
	w := New(Config{})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	if g := inst.GlobalByName("errno"); exec.AsU32(g.Get()) != ErrnoBadf {
		t.Fatalf("errno = %d, want EBADF(%d)", exec.AsU32(g.Get()), ErrnoBadf)
	}
}

func TestCPUWorkload(t *testing.T) {
	m, err := workloads.Module("cpu-bound")
	if err != nil {
		t.Fatal(err)
	}
	store := exec.NewStore(exec.Config{})
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("count_primes", exec.I32(100))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.AsI32(res[0]); got != 25 {
		t.Fatalf("primes below 100 = %d, want 25", got)
	}
}

func TestMemoryWorkload(t *testing.T) {
	m, err := workloads.Module("memory-bound")
	if err != nil {
		t.Fatal(err)
	}
	store := exec.NewStore(exec.Config{})
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("grow_touch", exec.I32(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.AsI32(res[0]); got != 4 {
		t.Fatalf("pages after grow = %d, want 4", got)
	}
	if inst.Memory().Grows() != 1 {
		t.Fatalf("grow count = %d", inst.Memory().Grows())
	}
}

func compileWat(t *testing.T, src string) *wasm.Module {
	t.Helper()
	m, err := wat.Compile(src)
	if err != nil {
		t.Fatalf("wat: %v", err)
	}
	return m
}

func TestAllWorkloadsCompile(t *testing.T) {
	for _, name := range workloads.Names() {
		if _, err := workloads.Module(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		bin, err := workloads.Binary(name)
		if err != nil || len(bin) < 8 {
			t.Errorf("%s: binary: %v (%d bytes)", name, err, len(bin))
		}
	}
	if !strings.Contains(strings.Join(workloads.Names(), ","), "minimal-service") {
		t.Error("minimal-service missing from Names")
	}
}

func TestFdReaddir(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "fd_readdir" (func $rd (param i32 i32 i32 i64 i32) (result i32)))
  (memory (export "memory") 1)
  (global $errno (export "errno") (mut i32) (i32.const 0))
  (func (export "_start")
    (global.set $errno
      (call $rd (i32.const 3) (i32.const 1024) (i32.const 4096) (i64.const 0) (i32.const 0)))))
`
	m := compileWat(t, src)
	fsys := vfs.New()
	fsys.MkdirAll("/work")
	fsys.WriteFile("/work/beta.txt", []byte("b"))
	fsys.WriteFile("/work/alpha.txt", []byte("a"))
	fsys.MkdirAll("/work/subdir")
	w := New(Config{Preopens: []Preopen{{GuestPath: "/work", FS: fsys, HostPath: "/work"}}})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	if g := inst.GlobalByName("errno"); exec.AsU32(g.Get()) != ErrnoSuccess {
		t.Fatalf("errno = %d", exec.AsU32(g.Get()))
	}
	used, _ := inst.Memory().ReadUint32(0)
	if used == 0 {
		t.Fatal("no dirent bytes written")
	}
	buf, _ := inst.Memory().Read(1024, used)
	// Parse the dirent stream: expect alpha.txt, beta.txt, subdir in order.
	var names []string
	var types []byte
	for off := 0; off+24 <= len(buf); {
		namlen := int(binary.LittleEndian.Uint32(buf[off+16:]))
		types = append(types, buf[off+20])
		start := off + 24
		if start+namlen > len(buf) {
			break
		}
		names = append(names, string(buf[start:start+namlen]))
		off = start + namlen
	}
	want := []string{"alpha.txt", "beta.txt", "subdir"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if types[2] != filetypeDirectory || types[0] != filetypeRegularFile {
		t.Fatalf("types = %v", types)
	}
}

func TestFdReaddirCookieResume(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "fd_readdir" (func $rd (param i32 i32 i32 i64 i32) (result i32)))
  (memory (export "memory") 1)
  (func (export "_start")
    ;; resume from cookie 1: skip the first entry
    (call $rd (i32.const 3) (i32.const 1024) (i32.const 4096) (i64.const 1) (i32.const 0))
    drop))
`
	m := compileWat(t, src)
	fsys := vfs.New()
	fsys.MkdirAll("/d")
	fsys.WriteFile("/d/a", nil)
	fsys.WriteFile("/d/b", nil)
	w := New(Config{Preopens: []Preopen{{GuestPath: "/d", FS: fsys, HostPath: "/d"}}})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, _ := store.Instantiate(m, "")
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	used, _ := inst.Memory().ReadUint32(0)
	buf, _ := inst.Memory().Read(1024, used)
	namlen := int(binary.LittleEndian.Uint32(buf[16:]))
	name := string(buf[24 : 24+namlen])
	if name != "b" {
		t.Fatalf("resumed entry = %q, want b", name)
	}
}

func TestFdReaddirErrors(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "fd_readdir" (func $rd (param i32 i32 i32 i64 i32) (result i32)))
  (memory (export "memory") 1)
  (global $e1 (export "e1") (mut i32) (i32.const 0))
  (global $e2 (export "e2") (mut i32) (i32.const 0))
  (func (export "_start")
    (global.set $e1 (call $rd (i32.const 99) (i32.const 0) (i32.const 64) (i64.const 0) (i32.const 128)))
    (global.set $e2 (call $rd (i32.const 0) (i32.const 0) (i32.const 64) (i64.const 0) (i32.const 128)))))
`
	m := compileWat(t, src)
	w := New(Config{})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, _ := store.Instantiate(m, "")
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	if e := exec.AsU32(inst.GlobalByName("e1").Get()); e != ErrnoBadf {
		t.Fatalf("bad fd errno = %d", e)
	}
	if e := exec.AsU32(inst.GlobalByName("e2").Get()); e != ErrnoNotdir {
		t.Fatalf("stdin readdir errno = %d", e)
	}
}

func TestPollOneoffClockAndFd(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "poll_oneoff" (func $po (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (global $errno (export "errno") (mut i32) (i32.const -1))
  (func (export "_start")
    ;; subscription 0 at 0: userdata=7, tag=clock(0)
    (i64.store (i32.const 0) (i64.const 7))
    (i32.store8 (i32.const 8) (i32.const 0))
    ;; subscription 1 at 48: userdata=9, tag=fd_read(1)
    (i64.store (i32.const 48) (i64.const 9))
    (i32.store8 (i32.const 56) (i32.const 1))
    (global.set $errno
      (call $po (i32.const 0) (i32.const 512) (i32.const 2) (i32.const 1024)))))
`
	m := compileWat(t, src)
	w := New(Config{})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	if e := exec.AsU32(inst.GlobalByName("errno").Get()); e != ErrnoSuccess {
		t.Fatalf("errno = %d", e)
	}
	mem := inst.Memory()
	n, _ := mem.ReadUint32(1024)
	if n != 2 {
		t.Fatalf("nevents = %d", n)
	}
	// Event 0: userdata 7, errno success, type clock.
	u0, _ := mem.ReadUint64(512)
	if u0 != 7 {
		t.Fatalf("event0 userdata = %d", u0)
	}
	ev0, _ := mem.Read(512, 32)
	if ev0[10] != eventtypeClock {
		t.Fatalf("event0 type = %d", ev0[10])
	}
	// Event 1: userdata 9, type fd_read, nbytes 1.
	u1, _ := mem.ReadUint64(512 + 32)
	if u1 != 9 {
		t.Fatalf("event1 userdata = %d", u1)
	}
	ev1, _ := mem.Read(512+32, 32)
	if ev1[10] != eventtypeFdRead {
		t.Fatalf("event1 type = %d", ev1[10])
	}
	if nb, _ := mem.ReadUint64(512 + 32 + 16); nb != 1 {
		t.Fatalf("event1 nbytes = %d", nb)
	}
}

func TestPollOneoffZeroSubsIsEINVAL(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "poll_oneoff" (func $po (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (global $errno (export "errno") (mut i32) (i32.const -1))
  (func (export "_start")
    (global.set $errno (call $po (i32.const 0) (i32.const 0) (i32.const 0) (i32.const 0)))))
`
	m := compileWat(t, src)
	w := New(Config{})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, _ := store.Instantiate(m, "")
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	if e := exec.AsU32(inst.GlobalByName("errno").Get()); e != ErrnoInval {
		t.Fatalf("errno = %d, want EINVAL", e)
	}
}

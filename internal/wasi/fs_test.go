package wasi

import (
	"strings"
	"testing"

	"wasmcontainers/internal/vfs"
	"wasmcontainers/internal/wasm/exec"
)

// fsHarness instantiates a module exercising the filesystem surface of
// WASI: prestat discovery, stat calls, directory create/remove, unlink.
const fsHarnessWAT = `
(module
  (import "wasi_snapshot_preview1" "fd_prestat_get" (func $pg (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_prestat_dir_name" (func $pdn (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_fdstat_get" (func $fsg (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_filestat_get" (func $ffg (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_filestat_get" (func $pfg (param i32 i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_create_directory" (func $pcd (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_remove_directory" (func $prd (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_unlink_file" (func $puf (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "clock_res_get" (func $crg (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "sched_yield" (func $sy (result i32)))
  (import "wasi_snapshot_preview1" "fd_fdstat_set_flags" (func $fsf (param i32 i32) (result i32)))
  (memory (export "memory") 1)
  ;; path strings
  (data (i32.const 0) "newdir")
  (data (i32.const 16) "hello.txt")
  ;; globals capture each errno
  (global $e_prestat (export "e_prestat") (mut i32) (i32.const -1))
  (global $e_dirname (export "e_dirname") (mut i32) (i32.const -1))
  (global $e_fdstat (export "e_fdstat") (mut i32) (i32.const -1))
  (global $e_filestat (export "e_filestat") (mut i32) (i32.const -1))
  (global $e_pathstat (export "e_pathstat") (mut i32) (i32.const -1))
  (global $e_mkdir (export "e_mkdir") (mut i32) (i32.const -1))
  (global $e_rmdir (export "e_rmdir") (mut i32) (i32.const -1))
  (global $e_unlink (export "e_unlink") (mut i32) (i32.const -1))
  (global $e_misc (export "e_misc") (mut i32) (i32.const -1))
  (func (export "_start")
    (global.set $e_prestat (call $pg (i32.const 3) (i32.const 256)))
    (global.set $e_dirname (call $pdn (i32.const 3) (i32.const 300) (i32.const 64)))
    (global.set $e_fdstat (call $fsg (i32.const 3) (i32.const 400)))
    (global.set $e_filestat (call $ffg (i32.const 3) (i32.const 500)))
    ;; stat the existing file hello.txt
    (global.set $e_pathstat (call $pfg (i32.const 3) (i32.const 0) (i32.const 16) (i32.const 9) (i32.const 600)))
    (global.set $e_mkdir (call $pcd (i32.const 3) (i32.const 0) (i32.const 6)))
    (global.set $e_rmdir (call $prd (i32.const 3) (i32.const 0) (i32.const 6)))
    (global.set $e_unlink (call $puf (i32.const 3) (i32.const 16) (i32.const 9)))
    (call $crg (i32.const 0) (i32.const 700))
    drop
    (call $sy)
    drop
    (global.set $e_misc (call $fsf (i32.const 3) (i32.const 0)))))
`

func TestFilesystemSurface(t *testing.T) {
	fsys := vfs.New()
	fsys.MkdirAll("/root")
	fsys.WriteFile("/root/hello.txt", []byte("hello, wasi"))
	m := compileWat(t, fsHarnessWAT)
	w := New(Config{Preopens: []Preopen{{GuestPath: "/root", FS: fsys, HostPath: "/root"}}})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"e_prestat", "e_dirname", "e_fdstat", "e_filestat", "e_pathstat", "e_mkdir", "e_rmdir", "e_unlink", "e_misc"} {
		if v := exec.AsU32(inst.GlobalByName(g).Get()); v != ErrnoSuccess {
			t.Errorf("%s = %d, want success", g, v)
		}
	}
	mem := inst.Memory()
	// prestat: tag 0 (dir) + name_len of "/root".
	if tag, _ := mem.Read(256, 1); tag[0] != 0 {
		t.Fatalf("prestat tag = %d", tag[0])
	}
	if n, _ := mem.ReadUint32(260); n != uint32(len("/root")) {
		t.Fatalf("prestat name_len = %d", n)
	}
	if name, _ := mem.ReadString(300, uint32(len("/root"))); name != "/root" {
		t.Fatalf("prestat dir name = %q", name)
	}
	// fdstat of fd 3: filetype directory.
	if ft, _ := mem.Read(400, 1); ft[0] != filetypeDirectory {
		t.Fatalf("fdstat filetype = %d", ft[0])
	}
	// path_filestat of hello.txt: regular file, size 11.
	if ft, _ := mem.Read(600+16, 1); ft[0] != filetypeRegularFile {
		t.Fatalf("filestat filetype = %d", ft[0])
	}
	if size, _ := mem.ReadUint64(600 + 32); size != 11 {
		t.Fatalf("filestat size = %d", size)
	}
	// clock_res_get wrote a nonzero resolution.
	if res, _ := mem.ReadUint64(700); res == 0 {
		t.Fatal("clock resolution = 0")
	}
	// The mkdir+rmdir round-tripped: newdir is gone; unlink removed the file.
	if _, err := fsys.Stat("/root/newdir"); err == nil {
		t.Fatal("newdir still exists")
	}
	if _, err := fsys.Stat("/root/hello.txt"); err == nil {
		t.Fatal("hello.txt still exists")
	}
}

func TestPathErrnos(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "path_filestat_get" (func $pfg (param i32 i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_unlink_file" (func $puf (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_remove_directory" (func $prd (param i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_create_directory" (func $pcd (param i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (data (i32.const 0) "missing")
  (data (i32.const 16) "adir")
  (data (i32.const 32) "afile")
  (global $e_stat (export "e_stat") (mut i32) (i32.const -1))
  (global $e_unlinkdir (export "e_unlinkdir") (mut i32) (i32.const -1))
  (global $e_rmfile (export "e_rmfile") (mut i32) (i32.const -1))
  (global $e_mkdirdup (export "e_mkdirdup") (mut i32) (i32.const -1))
  (func (export "_start")
    (global.set $e_stat (call $pfg (i32.const 3) (i32.const 0) (i32.const 0) (i32.const 7) (i32.const 512)))
    (global.set $e_unlinkdir (call $puf (i32.const 3) (i32.const 16) (i32.const 4)))
    (global.set $e_rmfile (call $prd (i32.const 3) (i32.const 32) (i32.const 5)))
    (global.set $e_mkdirdup (call $pcd (i32.const 3) (i32.const 16) (i32.const 4)))))
`
	fsys := vfs.New()
	fsys.MkdirAll("/r/adir")
	fsys.WriteFile("/r/afile", []byte("x"))
	m := compileWat(t, src)
	w := New(Config{Preopens: []Preopen{{GuestPath: "/r", FS: fsys, HostPath: "/r"}}})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	check := func(g string, want uint32) {
		if v := exec.AsU32(inst.GlobalByName(g).Get()); v != want {
			t.Errorf("%s = %d, want %d", g, v, want)
		}
	}
	check("e_stat", ErrnoNoent)
	check("e_unlinkdir", ErrnoIsdir)
	check("e_rmfile", ErrnoNotdir)
	check("e_mkdirdup", ErrnoExist)
}

func TestSortedExtensionsListsAll(t *testing.T) {
	names := SortedExtensions()
	if len(names) < 20 {
		t.Fatalf("only %d extensions listed", len(names))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"fd_write", "path_open", "proc_exit", "fd_readdir"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s", want)
		}
	}
	// Sorted order.
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("not sorted at %d: %v", i, names)
		}
	}
}

func TestWriteToStderrAndDiscard(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "fd_write" (func $fw (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (data (i32.const 16) "err!")
  (func (export "_start")
    (i32.store (i32.const 0) (i32.const 16))
    (i32.store (i32.const 4) (i32.const 4))
    ;; fd 2 = stderr, fd 1 = stdout (both nil here: discarded)
    (call $fw (i32.const 2) (i32.const 0) (i32.const 1) (i32.const 8)) drop
    (call $fw (i32.const 1) (i32.const 0) (i32.const 1) (i32.const 8)) drop))
`
	m := compileWat(t, src)
	w := New(Config{}) // nil stdout/stderr: writes succeed and are discarded
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten != 8 {
		t.Fatalf("BytesWritten = %d, want 8", w.BytesWritten)
	}
}

func TestStdinRead(t *testing.T) {
	src := `
(module
  (import "wasi_snapshot_preview1" "fd_read" (func $fr (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  (func (export "_start")
    (i32.store (i32.const 0) (i32.const 64))
    (i32.store (i32.const 4) (i32.const 16))
    (call $fr (i32.const 0) (i32.const 0) (i32.const 1) (i32.const 8)) drop))
`
	m := compileWat(t, src)
	w := New(Config{Stdin: strings.NewReader("piped-input")})
	store := exec.NewStore(exec.Config{})
	w.Register(store)
	inst, err := store.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatal(err)
	}
	n, _ := inst.Memory().ReadUint32(8)
	if n != uint32(len("piped-input")) {
		t.Fatalf("nread = %d", n)
	}
	got, _ := inst.Memory().ReadString(64, n)
	if got != "piped-input" {
		t.Fatalf("stdin read %q", got)
	}
}

// Package workloads holds the guest programs used across the benchmark
// suite. The paper evaluates a "minimal C application corresponding to a
// very small microservice"; here the equivalent programs are written in
// WebAssembly text format and assembled by the wat package, plus a Python
// variant (run by the pylite interpreter) for the non-Wasm baseline.
package workloads

import (
	"strings"
	"sync"

	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wat"
)

// MinimalServiceWAT is the paper's microservice: it reads its arguments,
// prints a single startup line to stdout via fd_write, touches a small
// amount of linear memory (a request counter table), and exits 0. Memory
// and startup behaviour are dominated by the runtime, exactly as the paper
// requires.
const MinimalServiceWAT = `
(module
  (import "wasi_snapshot_preview1" "fd_write"
    (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "proc_exit"
    (func $proc_exit (param i32)))
  (memory (export "memory") 1)
  ;; iovec at 0: base=16 len=15 ; message at 16
  (data (i32.const 16) "service ready\0a")
  (func $main (export "_start") (local $i i32)
    ;; initialize a small counter table (touch 256 bytes)
    block $done
      loop $fill
        local.get $i
        i32.const 256
        i32.ge_u
        br_if $done
        local.get $i
        i32.const 1024
        i32.add
        i32.const 0
        i32.store8
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $fill
      end
    end
    ;; write the banner
    (i32.store (i32.const 0) (i32.const 16))
    (i32.store (i32.const 4) (i32.const 14))
    (call $fd_write (i32.const 1) (i32.const 0) (i32.const 1) (i32.const 8))
    drop
    (call $proc_exit (i32.const 0))))
`

// CPUBoundWAT computes primes with trial division; its runtime scales with
// the argument stored at a fixed memory location by the harness. Used for
// the engine-throughput ablation.
const CPUBoundWAT = `
(module
  (func $is_prime (param $n i32) (result i32) (local $d i32)
    local.get $n
    i32.const 2
    i32.lt_u
    if (result i32)
      i32.const 0
    else
      i32.const 2
      local.set $d
      block $out (result i32)
        loop $chk (result i32)
          local.get $d
          local.get $d
          i32.mul
          local.get $n
          i32.gt_u
          if
            i32.const 1
            br $out
          end
          local.get $n
          local.get $d
          i32.rem_u
          i32.eqz
          if
            i32.const 0
            br $out
          end
          local.get $d
          i32.const 1
          i32.add
          local.set $d
          br $chk
        end
      end
    end)
  (func (export "count_primes") (param $limit i32) (result i32)
    (local $i i32) (local $count i32)
    i32.const 2
    local.set $i
    block $done
      loop $next
        local.get $i
        local.get $limit
        i32.ge_u
        br_if $done
        local.get $i
        call $is_prime
        local.get $count
        i32.add
        local.set $count
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $next
      end
    end
    local.get $count))
`

// MemoryBoundWAT grows linear memory and touches every new page; used by
// the memory-model tests and the density ablation.
const MemoryBoundWAT = `
(module
  (memory (export "memory") 1 64)
  (func (export "grow_touch") (param $pages i32) (result i32) (local $addr i32)
    local.get $pages
    memory.grow
    i32.const -1
    i32.eq
    if
      i32.const -1
      return
    end
    ;; touch one byte per new page
    (local.set $addr (i32.const 65536))
    block $done
      loop $touch
        local.get $addr
        memory.size
        i32.const 65536
        i32.mul
        i32.ge_u
        br_if $done
        local.get $addr
        i32.const 7
        i32.store8
        local.get $addr
        i32.const 65536
        i32.add
        local.set $addr
        br $touch
      end
    end
    memory.size))
`

// EchoArgsWAT prints each argument on its own line. It exercises the WASI
// argument-handling path that the paper's crun integration forwards from the
// OCI process spec (integration aspect 2 in Section III-C).
const EchoArgsWAT = `
(module
  (import "wasi_snapshot_preview1" "args_sizes_get" (func $args_sizes_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "args_get" (func $args_get (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_write" (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (memory (export "memory") 1)
  ;; layout: 0: argc, 4: buflen, 8: argv pointers (max 64), 264: arg buffer,
  ;;         4096: iovec pair, 4112: newline
  (data (i32.const 4112) "\0a")
  (func (export "_start") (local $i i32) (local $argc i32) (local $ptr i32) (local $len i32)
    (call $args_sizes_get (i32.const 0) (i32.const 4))
    drop
    (call $args_get (i32.const 8) (i32.const 264))
    drop
    (local.set $argc (i32.load (i32.const 0)))
    block $done
      loop $each
        local.get $i
        local.get $argc
        i32.ge_u
        br_if $done
        ;; ptr = argv[i]
        (local.set $ptr (i32.load (i32.add (i32.const 8) (i32.mul (local.get $i) (i32.const 4)))))
        ;; strlen
        (local.set $len (i32.const 0))
        block $sdone
          loop $s
            (i32.load8_u (i32.add (local.get $ptr) (local.get $len)))
            i32.eqz
            br_if $sdone
            (local.set $len (i32.add (local.get $len) (i32.const 1)))
            br $s
          end
        end
        ;; iovec: [ptr,len] + newline
        (i32.store (i32.const 4096) (local.get $ptr))
        (i32.store (i32.const 4100) (local.get $len))
        (i32.store (i32.const 4104) (i32.const 4112))
        (i32.store (i32.const 4108) (i32.const 1))
        (call $fd_write (i32.const 1) (i32.const 4096) (i32.const 2) (i32.const 4120))
        drop
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        br $each
      end
    end))
`

// FileIOWAT creates a file in the first preopened directory, writes a
// payload, reads it back, and prints the byte count. It exercises the
// pre-opened directory forwarding of the crun WASI integration.
const FileIOWAT = `
(module
  (import "wasi_snapshot_preview1" "path_open"
    (func $path_open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_write" (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_read" (func $fd_read (param i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_seek" (func $fd_seek (param i32 i64 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_close" (func $fd_close (param i32) (result i32)))
  (memory (export "memory") 1)
  (data (i32.const 0) "state.bin")
  (data (i32.const 64) "persisted-payload")
  (data (i32.const 512) "ok\0a")
  (func (export "_start") (local $fd i32) (local $errno i32)
    ;; open fd3:"state.bin" create|trunc
    (local.set $errno
      (call $path_open (i32.const 3) (i32.const 0) (i32.const 0) (i32.const 9)
                       (i32.const 9) (i64.const -1) (i64.const -1) (i32.const 0) (i32.const 32)))
    local.get $errno
    if return end
    (local.set $fd (i32.load (i32.const 32)))
    ;; write payload (17 bytes at 64)
    (i32.store (i32.const 96) (i32.const 64))
    (i32.store (i32.const 100) (i32.const 17))
    (call $fd_write (local.get $fd) (i32.const 96) (i32.const 1) (i32.const 104))
    drop
    ;; seek back and read into 128
    (call $fd_seek (local.get $fd) (i64.const 0) (i32.const 0) (i32.const 112))
    drop
    (i32.store (i32.const 96) (i32.const 128))
    (i32.store (i32.const 100) (i32.const 17))
    (call $fd_read (local.get $fd) (i32.const 96) (i32.const 1) (i32.const 120))
    drop
    (call $fd_close (local.get $fd))
    drop
    ;; print "ok\n"
    (i32.store (i32.const 96) (i32.const 512))
    (i32.store (i32.const 100) (i32.const 3))
    (call $fd_write (i32.const 1) (i32.const 96) (i32.const 1) (i32.const 104))
    drop))
`

// RequestHandlerWAT is the serving workload: an invocable request handler
// for the internal/serve warm-pool gateway. Each handle(n) call bumps a
// per-instance request counter in linear memory, dirties n bytes of scratch
// state, runs a bounded compute loop (8n iterations), and returns the
// counter. On a freshly instantiated — or correctly reset — instance the
// counter always reads 1, which is exactly what the pool-reuse tests assert:
// any cross-request state bleed makes the return value climb.
const RequestHandlerWAT = `
(module
  (memory (export "memory") 1)
  ;; layout: 0: request counter, 32: compute sink, 64+: scratch dirtied per request
  (func (export "handle") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    ;; counter++
    (i32.store (i32.const 0) (i32.add (i32.load (i32.const 0)) (i32.const 1)))
    ;; dirty n bytes of scratch state
    block $fdone
      loop $fill
        local.get $i
        local.get $n
        i32.ge_u
        br_if $fdone
        (i32.store8 (i32.add (i32.const 64) (local.get $i)) (i32.const 171))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        br $fill
      end
    end
    ;; bounded per-request compute: acc = sum(i) for i in [0, 8n)
    (local.set $i (i32.const 0))
    block $cdone
      loop $compute
        local.get $i
        (i32.mul (local.get $n) (i32.const 8))
        i32.ge_u
        br_if $cdone
        (local.set $acc (i32.add (local.get $acc) (local.get $i)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        br $compute
      end
    end
    (i32.store (i32.const 32) (local.get $acc))
    (i32.load (i32.const 0))))
`

// MinimalServicePy is the Python-container equivalent of MinimalServiceWAT,
// executed by the pylite interpreter inside runC/crun Python containers.
const MinimalServicePy = `
counters = []
i = 0
while i < 256:
    counters.append(0)
    i = i + 1
print("service ready")
`

var (
	compileOnce sync.Once
	compiled    map[string]*wasm.Module
	compileErr  error
)

// moduleSources names every WAT workload.
var moduleSources = map[string]string{
	"minimal-service": MinimalServiceWAT,
	"cpu-bound":       CPUBoundWAT,
	"memory-bound":    MemoryBoundWAT,
	"echo-args":       EchoArgsWAT,
	"file-io":         FileIOWAT,
	"request-handler": RequestHandlerWAT,
}

func ensureCompiled() error {
	compileOnce.Do(func() {
		compiled = make(map[string]*wasm.Module, len(moduleSources))
		for name, src := range moduleSources {
			m, err := wat.Compile(src)
			if err != nil {
				compileErr = err
				return
			}
			m.Name = name
			compiled[name] = m
		}
	})
	return compileErr
}

// Module returns the named compiled workload module. Names of the form
// request-handler-v<suffix> synthesize a handler variant on demand (see
// HandlerVariantPrefix).
func Module(name string) (*wasm.Module, error) {
	if err := ensureCompiled(); err != nil {
		return nil, err
	}
	if m, ok := compiled[name]; ok {
		return m, nil
	}
	if strings.HasPrefix(name, HandlerVariantPrefix) {
		return handlerVariant(name)
	}
	return nil, &UnknownWorkloadError{Name: name}
}

// HandlerVariantPrefix names the synthesized request-handler variants:
// request-handler-v<suffix>, where suffix is 1-16 characters of
// [a-z0-9-]. Each variant embeds its name as a data segment in otherwise
// unused scratch memory, so it behaves exactly like request-handler but
// encodes — and content-addresses — differently: multi-module serving and
// the shard ablation get N distinct module digests (N distinct shards,
// pools, and shared-artifact charges) from one handler implementation.
const HandlerVariantPrefix = "request-handler-v"

var (
	variantMu sync.Mutex
	variants  map[string]*wasm.Module
)

// handlerVariant synthesizes (and caches) one named variant.
func handlerVariant(name string) (*wasm.Module, error) {
	suffix := strings.TrimPrefix(name, HandlerVariantPrefix)
	if len(suffix) == 0 || len(suffix) > 16 {
		return nil, &UnknownWorkloadError{Name: name}
	}
	for _, c := range suffix {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return nil, &UnknownWorkloadError{Name: name}
		}
	}
	variantMu.Lock()
	defer variantMu.Unlock()
	if m, ok := variants[name]; ok {
		return m, nil
	}
	// The tag (at most 16 bytes) lands at offset 40, between the compute
	// sink (32) and the per-request scratch (64): handle() never touches
	// 40..55, so behaviour is identical; only the encoded bytes (and the
	// digest) differ.
	src := strings.Replace(RequestHandlerWAT,
		`(memory (export "memory") 1)`,
		`(memory (export "memory") 1)
  (data (i32.const 40) "`+suffix+`")`, 1)
	m, err := wat.Compile(src)
	if err != nil {
		return nil, err
	}
	m.Name = name
	if variants == nil {
		variants = map[string]*wasm.Module{}
	}
	variants[name] = m
	return m, nil
}

// Binary returns the wasm binary encoding of the named workload.
func Binary(name string) ([]byte, error) {
	m, err := Module(name)
	if err != nil {
		return nil, err
	}
	return wasm.Encode(m), nil
}

// Names lists the available WAT workloads.
func Names() []string {
	return []string{"minimal-service", "cpu-bound", "memory-bound", "echo-args", "file-io", "request-handler"}
}

// UnknownWorkloadError reports a request for a workload that does not exist.
type UnknownWorkloadError struct{ Name string }

// Error implements the error interface.
func (e *UnknownWorkloadError) Error() string { return "workloads: unknown workload " + e.Name }

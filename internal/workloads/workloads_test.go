package workloads

import (
	"bytes"
	"testing"

	"wasmcontainers/internal/wasi"
	"wasmcontainers/internal/wasm"
	"wasmcontainers/internal/wasm/exec"
)

func TestAllWorkloadsDecodeAndValidate(t *testing.T) {
	for _, name := range Names() {
		bin, err := Binary(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := wasm.Decode(bin)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if err := wasm.Validate(m); err != nil {
			t.Fatalf("%s: validate: %v", name, err)
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Module("missing"); err == nil {
		t.Fatal("unknown workload accepted")
	} else if _, ok := err.(*UnknownWorkloadError); !ok {
		t.Fatalf("wrong error type: %T", err)
	}
}

func TestModuleCaching(t *testing.T) {
	a, err := Module("minimal-service")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Module("minimal-service")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("modules not cached")
	}
}

func TestCPUBoundCorrectness(t *testing.T) {
	m, _ := Module("cpu-bound")
	s := exec.NewStore(exec.Config{})
	inst, err := s.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	// pi(x): number of primes below x.
	cases := map[int32]int32{2: 0, 3: 1, 10: 4, 100: 25, 1000: 168}
	for limit, want := range cases {
		res, err := inst.Call("count_primes", exec.I32(limit))
		if err != nil {
			t.Fatal(err)
		}
		if got := exec.AsI32(res[0]); got != want {
			t.Errorf("count_primes(%d) = %d, want %d", limit, got, want)
		}
	}
}

func TestMemoryBoundGrowth(t *testing.T) {
	m, _ := Module("memory-bound")
	s := exec.NewStore(exec.Config{})
	inst, err := s.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call("grow_touch", exec.I32(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.AsI32(res[0]); got != 8 {
		t.Fatalf("pages = %d, want 8", got)
	}
	// Growing past the 64-page max fails with -1.
	res, err = inst.Call("grow_touch", exec.I32(1000))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.AsI32(res[0]); got != -1 {
		t.Fatalf("over-grow = %d, want -1", got)
	}
}

func TestRequestHandlerCounterAndWork(t *testing.T) {
	m, _ := Module("request-handler")
	s := exec.NewStore(exec.Config{})
	inst, err := s.Instantiate(m, "")
	if err != nil {
		t.Fatal(err)
	}
	// The counter climbs across calls on the same (un-reset) instance:
	// that climb is the state bleed the serve pool's reset must erase.
	for want := int32(1); want <= 3; want++ {
		res, err := inst.Call("handle", exec.I32(16))
		if err != nil {
			t.Fatal(err)
		}
		if got := exec.AsI32(res[0]); got != want {
			t.Fatalf("handle call %d returned %d", want, got)
		}
	}
	// Scratch bytes really get dirtied.
	mem := inst.Memory()
	b, ok := mem.Read(64, 16)
	if !ok {
		t.Fatal("scratch read failed")
	}
	for i, v := range b {
		if v != 171 {
			t.Fatalf("scratch[%d] = %d, want 171", i, v)
		}
	}
	// Work scales with the argument (8n loop iterations).
	before := s.InstructionCount()
	if _, err := inst.Call("handle", exec.I32(1000)); err != nil {
		t.Fatal(err)
	}
	big := s.InstructionCount() - before
	before = s.InstructionCount()
	if _, err := inst.Call("handle", exec.I32(10)); err != nil {
		t.Fatal(err)
	}
	small := s.InstructionCount() - before
	if big < 10*small {
		t.Fatalf("work did not scale: n=1000 cost %d, n=10 cost %d", big, small)
	}
}

func TestMinimalServiceIsSmall(t *testing.T) {
	// The paper's premise: the workload must be tiny so the runtime
	// dominates. Binary under 4 KiB, one memory page, a few thousand
	// instructions.
	bin, _ := Binary("minimal-service")
	if len(bin) > 4096 {
		t.Fatalf("minimal-service binary is %d bytes", len(bin))
	}
	m, _ := Module("minimal-service")
	w := wasi.New(wasi.Config{Stdout: &bytes.Buffer{}})
	s := exec.NewStore(exec.Config{})
	res, err := w.Run(s, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions > 10_000 {
		t.Fatalf("minimal-service executed %d instructions", res.Instructions)
	}
	if res.MemoryPages != 1 {
		t.Fatalf("memory pages = %d", res.MemoryPages)
	}
}

func TestMinimalServicePyMatchesWasmBehaviour(t *testing.T) {
	// Both variants of the benchmark app print the same banner.
	m, _ := Module("minimal-service")
	var wasmOut bytes.Buffer
	w := wasi.New(wasi.Config{Stdout: &wasmOut})
	s := exec.NewStore(exec.Config{})
	if _, err := w.Run(s, m); err != nil {
		t.Fatal(err)
	}
	if wasmOut.String() != "service ready\n" {
		t.Fatalf("wasm output %q", wasmOut.String())
	}
	// The Python twin is tested in the pylite package; here we only check
	// the source mentions the same banner.
	if !bytes.Contains([]byte(MinimalServicePy), []byte("service ready")) {
		t.Fatal("python variant diverged")
	}
}

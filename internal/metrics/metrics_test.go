package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.P50 != 4.5 {
		t.Fatalf("p50 = %v", s.P50)
	}
	// pos = 0.99*7 = 6.93, interpolated between 7 and 9.
	if math.Abs(s.P99-8.86) > 1e-9 {
		t.Fatalf("p99 = %v", s.P99)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.StdDev != 0 || s.P50 != 42 || s.P95 != 42 || s.P99 != 42 {
		t.Fatalf("single summary = %+v", s)
	}
}

// TestSummarizeNonFinite is table-driven over NaN/Inf handling: non-finite
// samples are skipped and counted in Dropped instead of poisoning the
// statistics.
func TestSummarizeNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name    string
		in      []float64
		n       int
		dropped int
		mean    float64
		p50     float64
	}{
		{name: "empty", in: nil, n: 0, dropped: 0},
		{name: "single", in: []float64{3}, n: 1, dropped: 0, mean: 3, p50: 3},
		{name: "all nan", in: []float64{nan, nan}, n: 0, dropped: 2},
		{name: "all inf", in: []float64{inf, -inf}, n: 0, dropped: 2},
		{name: "nan among finite", in: []float64{1, nan, 3}, n: 2, dropped: 1, mean: 2, p50: 2},
		{name: "inf among finite", in: []float64{inf, 2, -inf, 4}, n: 2, dropped: 2, mean: 3, p50: 3},
		{name: "mixed", in: []float64{nan, 5, inf, 5, nan}, n: 2, dropped: 3, mean: 5, p50: 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Summarize(tc.in)
			if s.N != tc.n || s.Dropped != tc.dropped {
				t.Fatalf("N=%d Dropped=%d, want %d/%d", s.N, s.Dropped, tc.n, tc.dropped)
			}
			if tc.n > 0 && (s.Mean != tc.mean || s.P50 != tc.p50) {
				t.Fatalf("Mean=%v P50=%v, want %v/%v", s.Mean, s.P50, tc.mean, tc.p50)
			}
			if math.IsNaN(s.Mean) || math.IsNaN(s.StdDev) || math.IsInf(s.Mean, 0) {
				t.Fatalf("non-finite stats leaked: %+v", s)
			}
		})
	}
}

func TestSummaryStringDropped(t *testing.T) {
	s := Summarize([]float64{1, math.NaN()})
	if got := s.String(); !containsDropped(got) {
		t.Fatalf("String() should report dropped: %q", got)
	}
	s2 := Summarize([]float64{1})
	if got := s2.String(); containsDropped(got) {
		t.Fatalf("String() should omit dropped when zero: %q", got)
	}
}

func containsDropped(s string) bool {
	for i := 0; i+len("dropped=") <= len(s); i++ {
		if s[i:i+len("dropped=")] == "dropped=" {
			return true
		}
	}
	return false
}

func TestReductionAndIncrease(t *testing.T) {
	if r := Reduction(4, 8); r != 50 {
		t.Fatalf("Reduction(4,8) = %v", r)
	}
	if r := Reduction(8, 4); r != -100 {
		t.Fatalf("Reduction(8,4) = %v", r)
	}
	if r := Reduction(1, 0); r != 0 {
		t.Fatalf("Reduction with zero baseline = %v", r)
	}
	if inc := Increase(6, 4); math.Abs(inc-50) > 1e-9 {
		t.Fatalf("Increase(6,4) = %v", inc)
	}
}

// Property: mean is always within [min, max] and percentiles are ordered.
func TestSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		const eps = 1e-6
		return s.Mean >= s.Min-eps && s.Mean <= s.Max+eps &&
			s.P50 >= s.Min-eps && s.P50 <= s.P95+eps &&
			s.P95 <= s.P99+eps && s.P99 <= s.Max+eps &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reduction(x, y) and Increase(y/x relationship) are consistent.
func TestReductionIncreaseDuality(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a)+1, math.Abs(b)+1 // positive, non-zero
		r := Reduction(a, b)
		// ours = baseline*(1 - r/100)
		back := b * (1 - r/100)
		return math.Abs(back-a) < 1e-6*math.Max(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Package metrics provides the small statistics toolkit the benchmark
// harness uses: summary statistics over per-container samples (the paper
// reports means and notes the per-container deviation is negligible) and
// percentage-change helpers for the reduction claims.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
	P50    float64
	P95    float64
	P99    float64
	// Dropped counts NaN/Inf inputs Summarize skipped; one pathological
	// sample reports here instead of poisoning every derived statistic.
	Dropped int
}

// Summarize computes summary statistics over the finite entries of xs,
// skipping (and counting) NaN and ±Inf; it returns a zero Summary for an
// empty or all-non-finite sample.
func Summarize(xs []float64) Summary {
	finite := make([]float64, 0, len(xs))
	dropped := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			dropped++
			continue
		}
		finite = append(finite, x)
	}
	if len(finite) == 0 {
		return Summary{Dropped: dropped}
	}
	s := Summary{N: len(finite), Min: finite[0], Max: finite[0], Dropped: dropped}
	var sum float64
	for _, x := range finite {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(finite))
	var ss float64
	for _, x := range finite {
		d := x - s.Mean
		ss += d * d
	}
	if len(finite) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(finite)-1))
	}
	sorted := finite
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile takes a pre-sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Reduction returns the percentage by which ours is lower than baseline
// (positive = ours is smaller).
func Reduction(ours, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (1 - ours/baseline)
}

// Increase returns the percentage by which a exceeds b.
func Increase(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a/b - 1)
}

// String renders the summary compactly.
func (s Summary) String() string {
	out := fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f stddev=%.3f p50=%.3f p95=%.3f p99=%.3f",
		s.N, s.Mean, s.Min, s.Max, s.StdDev, s.P50, s.P95, s.P99)
	if s.Dropped > 0 {
		out += fmt.Sprintf(" dropped=%d", s.Dropped)
	}
	return out
}

// Package metrics provides the small statistics toolkit the benchmark
// harness uses: summary statistics over per-container samples (the paper
// reports means and notes the per-container deviation is negligible) and
// percentage-change helpers for the reduction claims.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes summary statistics; it returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile takes a pre-sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Reduction returns the percentage by which ours is lower than baseline
// (positive = ours is smaller).
func Reduction(ours, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (1 - ours/baseline)
}

// Increase returns the percentage by which a exceeds b.
func Increase(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a/b - 1)
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f stddev=%.3f p50=%.3f p95=%.3f p99=%.3f",
		s.N, s.Mean, s.Min, s.Max, s.StdDev, s.P50, s.P95, s.P99)
}

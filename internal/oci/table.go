package oci

import (
	"fmt"
	"sync"
)

// Container is the bookkeeping record low-level runtimes keep per container.
type Container struct {
	ID     string
	Bundle *Bundle
	Status Status
	Pid    int
	// Handler names the execution path chosen at start.
	Handler string
}

// ContainerTable is the thread-safe container registry shared by all
// low-level runtime implementations (crun, runC, youki).
type ContainerTable struct {
	mu   sync.Mutex
	ctrs map[string]*Container
}

// NewContainerTable creates an empty table.
func NewContainerTable() *ContainerTable {
	return &ContainerTable{ctrs: make(map[string]*Container)}
}

// Add registers a new container in the created state.
func (t *ContainerTable) Add(id string, bundle *Bundle) (*Container, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.ctrs[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	c := &Container{ID: id, Bundle: bundle, Status: StatusCreated}
	t.ctrs[id] = c
	return c, nil
}

// Get looks up a container.
func (t *ContainerTable) Get(id string) (*Container, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.ctrs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return c, nil
}

// Remove deletes a container record; the container must be stopped.
func (t *ContainerTable) Remove(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.ctrs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if c.Status == StatusRunning {
		return fmt.Errorf("%w: %s is running", ErrBadState, id)
	}
	delete(t.ctrs, id)
	return nil
}

// List returns all container IDs in insertion-independent order.
func (t *ContainerTable) List() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.ctrs))
	for id := range t.ctrs {
		out = append(out, id)
	}
	return out
}

package oci

import (
	"errors"
	"strings"
	"testing"

	"wasmcontainers/internal/vfs"
)

func validSpec() *Spec {
	return &Spec{
		Version: SpecVersion,
		Process: Process{Args: []string{"/app.wasm"}, Env: []string{"A=1"}, Cwd: "/"},
		Root:    Root{Path: "rootfs"},
		Linux:   &Linux{CgroupsPath: "/pods/x", Namespaces: DefaultNamespaces()},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	s := validSpec()
	s.Version = ""
	if err := s.Validate(); err == nil {
		t.Error("missing version accepted")
	}
	s = validSpec()
	s.Process.Args = nil
	if err := s.Validate(); err == nil {
		t.Error("empty args accepted")
	}
	s = validSpec()
	s.Root.Path = ""
	if err := s.Validate(); err == nil {
		t.Error("empty root accepted")
	}
	s = validSpec()
	s.Process.Env = []string{"MALFORMED"}
	if err := s.Validate(); err == nil {
		t.Error("malformed env accepted")
	}
}

func TestWasmDetection(t *testing.T) {
	// Via annotation.
	s := validSpec()
	s.Process.Args = []string{"/bin/app"}
	s.Annotations = map[string]string{WasmVariantAnnotation: "compat"}
	if !s.IsWasm() {
		t.Error("compat annotation not detected")
	}
	s.Annotations = map[string]string{WasmVariantAnnotation: "compat-smart"}
	if !s.IsWasm() {
		t.Error("compat-smart annotation not detected")
	}
	// Via handler annotation.
	s.Annotations = map[string]string{WasmHandlerAnnotation: "wasm"}
	if !s.IsWasm() {
		t.Error("handler annotation not detected")
	}
	// Via .wasm entrypoint.
	s = validSpec()
	if !s.IsWasm() {
		t.Error(".wasm entrypoint not detected")
	}
	// Plain native container.
	s = validSpec()
	s.Process.Args = []string{"python3", "app.py"}
	if s.IsWasm() {
		t.Error("python container misdetected as wasm")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.Annotations = map[string]string{WasmVariantAnnotation: "compat"}
	s.Mounts = []Mount{{Destination: "/data", Type: "bind", Source: "/host/data"}}
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "module.wasm.image/variant") {
		t.Fatalf("annotation missing from config.json:\n%s", b)
	}
	back, err := ParseSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Process.Args[0] != "/app.wasm" || back.Mounts[0].Destination != "/data" {
		t.Fatalf("roundtrip lost data: %+v", back)
	}
	if _, err := ParseSpec([]byte("{bad json")); err == nil {
		t.Error("bad json accepted")
	}
}

func TestBundleRequiresValidSpec(t *testing.T) {
	s := validSpec()
	s.Process.Args = nil
	if _, err := NewBundle("/b", s, vfs.New()); err == nil {
		t.Fatal("bundle with invalid spec accepted")
	}
	if _, err := NewBundle("/b", validSpec(), vfs.New()); err != nil {
		t.Fatal(err)
	}
}

func TestContainerTable(t *testing.T) {
	tab := NewContainerTable()
	b, _ := NewBundle("/b", validSpec(), vfs.New())
	c, err := tab.Add("c1", b)
	if err != nil || c.Status != StatusCreated {
		t.Fatalf("add: %v %v", c, err)
	}
	if _, err := tab.Add("c1", b); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate add: %v", err)
	}
	got, err := tab.Get("c1")
	if err != nil || got != c {
		t.Fatalf("get: %v %v", got, err)
	}
	if _, err := tab.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing: %v", err)
	}
	// Running containers cannot be removed.
	c.Status = StatusRunning
	if err := tab.Remove("c1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("remove running: %v", err)
	}
	c.Status = StatusStopped
	if err := tab.Remove("c1"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Remove("c1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
	if len(tab.List()) != 0 {
		t.Fatal("list not empty")
	}
}

func TestDefaultNamespaces(t *testing.T) {
	ns := DefaultNamespaces()
	want := map[string]bool{"pid": true, "network": true, "ipc": true, "uts": true, "mount": true, "cgroup": true}
	if len(ns) != len(want) {
		t.Fatalf("namespaces = %v", ns)
	}
	for _, n := range ns {
		if !want[n.Type] {
			t.Errorf("unexpected namespace %q", n.Type)
		}
	}
}

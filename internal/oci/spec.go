// Package oci defines the Open Container Initiative runtime-spec subset this
// repository uses: the container configuration (config.json), bundles, the
// container lifecycle state machine, and the low-level runtime interface
// that crun, runC, and youki implement. It mirrors the real spec closely
// enough that the Wasm-handler annotations (module.wasm.image/variant) and
// WASI argument forwarding work exactly as in the paper's crun integration.
package oci

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"wasmcontainers/internal/vfs"
)

// SpecVersion is the OCI runtime-spec version implemented.
const SpecVersion = "1.0.2"

// WasmVariantAnnotation marks a container image as a Wasm workload, following
// the CNCF convention the paper's integration consumes.
const WasmVariantAnnotation = "module.wasm.image/variant"

// WasmHandlerAnnotation selects the crun handler explicitly
// (run.oci.handler=wasm), the second trigger the paper's crun patch honors.
const WasmHandlerAnnotation = "run.oci.handler"

// Spec is the config.json of a bundle.
type Spec struct {
	Version     string            `json:"ociVersion"`
	Process     Process           `json:"process"`
	Root        Root              `json:"root"`
	Hostname    string            `json:"hostname,omitempty"`
	Mounts      []Mount           `json:"mounts,omitempty"`
	Annotations map[string]string `json:"annotations,omitempty"`
	Linux       *Linux            `json:"linux,omitempty"`
}

// Process describes the container entrypoint.
type Process struct {
	Args []string `json:"args"`
	Env  []string `json:"env,omitempty"`
	Cwd  string   `json:"cwd,omitempty"`
}

// Root describes the root filesystem.
type Root struct {
	Path     string `json:"path"`
	Readonly bool   `json:"readonly,omitempty"`
}

// Mount is a filesystem mount entry.
type Mount struct {
	Destination string   `json:"destination"`
	Type        string   `json:"type,omitempty"`
	Source      string   `json:"source,omitempty"`
	Options     []string `json:"options,omitempty"`
}

// Linux holds Linux-specific configuration.
type Linux struct {
	CgroupsPath string      `json:"cgroupsPath,omitempty"`
	Namespaces  []Namespace `json:"namespaces,omitempty"`
	Resources   *Resources  `json:"resources,omitempty"`
}

// Namespace is one namespace the container joins.
type Namespace struct {
	Type string `json:"type"`
}

// DefaultNamespaces returns the namespaces Kubernetes containers get.
func DefaultNamespaces() []Namespace {
	return []Namespace{
		{Type: "pid"}, {Type: "network"}, {Type: "ipc"},
		{Type: "uts"}, {Type: "mount"}, {Type: "cgroup"},
	}
}

// Resources carries cgroup limits.
type Resources struct {
	Memory *MemoryLimit `json:"memory,omitempty"`
	CPU    *CPULimit    `json:"cpu,omitempty"`
}

// MemoryLimit bounds container memory in bytes.
type MemoryLimit struct {
	Limit int64 `json:"limit,omitempty"`
}

// CPULimit bounds container CPU.
type CPULimit struct {
	Shares uint64 `json:"shares,omitempty"`
	Quota  int64  `json:"quota,omitempty"`
}

// Validate checks the spec for the constraints this implementation relies on.
func (s *Spec) Validate() error {
	if s.Version == "" {
		return errors.New("oci: missing ociVersion")
	}
	if len(s.Process.Args) == 0 {
		return errors.New("oci: process.args must not be empty")
	}
	if s.Root.Path == "" {
		return errors.New("oci: root.path must be set")
	}
	for _, e := range s.Process.Env {
		if !strings.Contains(e, "=") {
			return fmt.Errorf("oci: malformed env entry %q", e)
		}
	}
	return nil
}

// IsWasm reports whether the spec requests the Wasm handler, either through
// the image-variant annotation, the explicit handler annotation, or a .wasm
// entrypoint.
func (s *Spec) IsWasm() bool {
	if s.Annotations[WasmVariantAnnotation] == "compat" ||
		s.Annotations[WasmVariantAnnotation] == "compat-smart" {
		return true
	}
	if s.Annotations[WasmHandlerAnnotation] == "wasm" {
		return true
	}
	return len(s.Process.Args) > 0 && strings.HasSuffix(s.Process.Args[0], ".wasm")
}

// MarshalJSON round-trips through the standard library (the default), kept
// explicit so config.json serialization is part of the public contract.
func (s *Spec) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// ParseSpec decodes a config.json.
func ParseSpec(b []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("oci: parsing config.json: %w", err)
	}
	return &s, nil
}

// Bundle is an OCI bundle: a spec plus a root filesystem.
type Bundle struct {
	Path   string
	Spec   *Spec
	Rootfs *vfs.FS
}

// NewBundle assembles a bundle and validates its spec.
func NewBundle(path string, spec *Spec, rootfs *vfs.FS) (*Bundle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Bundle{Path: path, Spec: spec, Rootfs: rootfs}, nil
}

// Status is the lifecycle state of a container, per the OCI spec.
type Status string

// Lifecycle states.
const (
	StatusCreating Status = "creating"
	StatusCreated  Status = "created"
	StatusRunning  Status = "running"
	StatusStopped  Status = "stopped"
)

// State is the `state` operation result.
type State struct {
	Version     string            `json:"ociVersion"`
	ID          string            `json:"id"`
	Status      Status            `json:"status"`
	Pid         int               `json:"pid,omitempty"`
	Bundle      string            `json:"bundle"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

// StartCost is the simulated cost of creating+starting one container; the
// orchestration layer feeds it to the discrete-event engine.
type StartCost struct {
	// FixedDelay is non-CPU latency (IPC waits, readiness polls).
	FixedDelay time.Duration
	// CPUWork is CPU time consumed on the node's cores.
	CPUWork time.Duration
}

// StartReport is returned by Runtime.Start with real-execution telemetry.
type StartReport struct {
	Cost StartCost
	// Pid of the container's main process.
	Pid int
	// ExitCode of the entrypoint's initialization (0 = healthy).
	ExitCode uint32
	// Stdout captured from the entrypoint's startup.
	Stdout string
	// Instructions counts really-executed guest instructions/bytecode steps.
	Instructions uint64
	// Handler names the execution path taken ("wasm:wamr", "native:pylite").
	Handler string
}

// Runtime is the low-level OCI runtime interface (create/start/state/kill/
// delete), the layer crun, runC, and youki implement.
type Runtime interface {
	// Name returns the runtime's binary name (e.g. "crun").
	Name() string
	// Version returns the runtime version string.
	Version() string
	// Create prepares a container from a bundle (state: created).
	Create(id string, bundle *Bundle) error
	// Start launches the container entrypoint (state: running) and reports
	// its simulated cost and real execution telemetry.
	Start(id string) (*StartReport, error)
	// State queries a container.
	State(id string) (State, error)
	// Kill signals the container's process.
	Kill(id string, signal int) error
	// Delete removes a stopped container and its cgroup.
	Delete(id string) error
	// List returns all container IDs known to the runtime.
	List() []string
}

// Common runtime errors.
var (
	ErrNotFound  = errors.New("oci: container not found")
	ErrExists    = errors.New("oci: container already exists")
	ErrBadState  = errors.New("oci: operation not allowed in current state")
	ErrNoHandler = errors.New("oci: no handler for entrypoint")
)

package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wasmcontainers/internal/serve"
)

// TestMapError pins the full dispatcher-error → HTTP vocabulary: distinct
// admission outcomes must stay distinguishable on the wire.
func TestMapError(t *testing.T) {
	hints := retryHints{
		breakerCooldown: 2 * time.Second,
		queueDeadline:   500 * time.Millisecond,
	}
	cases := []struct {
		name       string
		err        error
		hints      retryHints
		status     int
		code       string
		retryAfter time.Duration
	}{
		{"queue full", serve.ErrQueueFull, hints,
			http.StatusTooManyRequests, "queue_full", 500 * time.Millisecond},
		{"queue full default hint", serve.ErrQueueFull, retryHints{},
			http.StatusTooManyRequests, "queue_full", defaultBusyRetry},
		{"concurrency limit", serve.ErrConcurrencyLimit, hints,
			http.StatusTooManyRequests, "concurrency_limit", defaultBusyRetry},
		{"breaker open", serve.ErrBreakerOpen, hints,
			http.StatusServiceUnavailable, "breaker_open", 2 * time.Second},
		{"breaker open default cooldown", serve.ErrBreakerOpen, retryHints{},
			http.StatusServiceUnavailable, "breaker_open", 100 * time.Millisecond},
		{"queue expired", serve.ErrQueueExpired, hints,
			http.StatusGatewayTimeout, "queue_expired", 0},
		{"request timeout", serve.ErrRequestTimeout, hints,
			http.StatusGatewayTimeout, "request_timeout", 0},
		{"dispatcher draining", serve.ErrDraining, hints,
			http.StatusServiceUnavailable, "draining", 0},
		{"bridge draining", ErrBridgeDraining, hints,
			http.StatusServiceUnavailable, "draining", 0},
		{"bridge busy", ErrBridgeBusy, hints,
			http.StatusServiceUnavailable, "bridge_busy", defaultBusyRetry},
		{"context canceled", context.Canceled, hints,
			StatusClientClosedRequest, "client_closed_request", 0},
		{"context deadline", context.DeadlineExceeded, hints,
			StatusClientClosedRequest, "client_closed_request", 0},
		{"guest failure", errors.New("guest trapped"), hints,
			http.StatusInternalServerError, "invoke_failed", 0},
		{"wrapped sentinel", fmt.Errorf("attempt 3: %w", serve.ErrQueueFull), hints,
			http.StatusTooManyRequests, "queue_full", 500 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := MapError(tc.err, tc.hints)
			if m.Status != tc.status {
				t.Errorf("status = %d, want %d", m.Status, tc.status)
			}
			if m.Code != tc.code {
				t.Errorf("code = %q, want %q", m.Code, tc.code)
			}
			if m.RetryAfter != tc.retryAfter {
				t.Errorf("retryAfter = %s, want %s", m.RetryAfter, tc.retryAfter)
			}
		})
	}
}

// TestWriteErrorEnvelope checks the wire shape: the {"error":{...}} JSON
// body and the whole-seconds Retry-After header mirroring retry_after_ms.
func TestWriteErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec,
		ErrorMapping{http.StatusTooManyRequests, "queue_full", 250 * time.Millisecond},
		serve.ErrQueueFull)

	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Errorf("content-type = %q", got)
	}
	// 250ms rounds up to the minimum expressible Retry-After of 1s.
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("unmarshal body: %v", err)
	}
	if env.Error.Code != "queue_full" {
		t.Errorf("body code = %q", env.Error.Code)
	}
	if env.Error.RetryAfterMs != 250 {
		t.Errorf("retry_after_ms = %d, want 250", env.Error.RetryAfterMs)
	}
	if env.Error.Message == "" {
		t.Error("message is empty")
	}
}

// TestWriteErrorNoRetryHeader: mappings without backoff advice must not
// emit a Retry-After header at all.
func TestWriteErrorNoRetryHeader(t *testing.T) {
	rec := httptest.NewRecorder()
	writeError(rec, ErrorMapping{http.StatusGatewayTimeout, "queue_expired", 0}, serve.ErrQueueExpired)
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Errorf("unexpected Retry-After %q", got)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("unmarshal body: %v", err)
	}
	if env.Error.RetryAfterMs != 0 {
		t.Errorf("retry_after_ms = %d, want omitted/0", env.Error.RetryAfterMs)
	}
}

// Package gateway turns the simulated cluster into a network service: a
// net/http front door (cmd/continuumd) serving function invokes, a minimal
// Docker-API-shaped control surface over the simulated Kubernetes cluster,
// and live Prometheus scraping of the existing telemetry registry.
//
// Its core is the real-time DES bridge. des.Engine and serve.Dispatcher are
// single-threaded by contract — one goroutine drives the virtual clock — but
// an HTTP server is N goroutines by construction. The Bridge reconciles the
// two: handler goroutines submit over a bounded channel, one event-loop
// goroutine injects submissions into the DES at the virtual time mapped from
// the wall clock, paces pending events against real time (configurable
// dilation), and delivers each serve.RequestResult back to the blocked
// handler. The bounded channel is the gateway's first backpressure stage:
// when the loop cannot keep up, Submit fails fast with ErrBridgeBusy instead
// of queueing unboundedly, and the HTTP layer maps that to 503 + Retry-After.
package gateway

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/serve"
)

// Bridge submission errors. Both are refusals issued before the dispatcher
// ever sees the request, so they do not appear in serve.DispatcherStats.
var (
	// ErrBridgeBusy means the submission channel was full: the event loop is
	// saturated and the caller should back off and retry.
	ErrBridgeBusy = errors.New("gateway: bridge submission queue full")
	// ErrBridgeDraining means Drain has begun: the bridge is flushing
	// in-flight work and accepts no new submissions.
	ErrBridgeDraining = errors.New("gateway: bridge draining")
)

// BridgeConfig shapes the real-time run layer.
type BridgeConfig struct {
	// Dilation maps virtual to wall time: an event at virtual time T fires
	// no earlier than T*Dilation wall nanoseconds after Start. 1.0 serves in
	// real time (a 3 ms simulated invoke takes ~3 ms of wall clock); 2.0 is
	// slow motion; 0 disables pacing entirely — events run as fast as the
	// loop can step them, which is the deterministic mode the tests and the
	// bench harness use.
	Dilation float64
	// SubmitBuffer bounds the submission channel; 0 means 256. A full buffer
	// fails Submit with ErrBridgeBusy.
	SubmitBuffer int
	// Sampler, when set, is called on the loop goroutine with the virtual
	// time about to become current — immediately before each event steps, so
	// a time-series window ending at or before that instant closes having
	// seen exactly the events that preceded it. At Dilation 0 this is the
	// only trigger, which is what makes the sampled series deterministic; at
	// Dilation > 0 a wall ticker additionally reports the wall-mapped virtual
	// time so an idle server still ages its windows.
	Sampler func(simNowNs int64)
	// SamplerTick is the wall interval of the idle ticker; 0 means 250ms.
	// Used only when Dilation > 0 and Sampler is set.
	SamplerTick time.Duration
}

// submission is one handler-goroutine request waiting to enter the DES,
// or (when run is set) a closure to execute on the loop goroutine. submit
// runs inside a DES event at the request's virtual arrival time and hands
// the request — dispatcher-direct or router-batched — its done callback.
type submission struct {
	submit func(done func(serve.RequestResult))
	result chan serve.RequestResult // buffered(1): the loop never blocks
	run    func()                   // non-nil: a Do closure, not a request
}

// Bridge runs a des.Engine on one goroutine and carries requests between
// concurrent submitters and the single-threaded dispatcher world.
type Bridge struct {
	eng *des.Engine
	cfg BridgeConfig

	subCh  chan submission
	stopCh chan struct{}
	doneCh chan struct{} // closed when the loop exits

	// simNow mirrors the engine clock for observers; the engine itself is
	// touched only by the loop goroutine once Start has run.
	simNow atomic.Int64

	// mu guards admission state: pending in-flight submissions and the
	// draining flag. idleCh closes when draining and pending hits zero.
	mu       sync.Mutex
	pending  int
	draining bool
	idleCh   chan struct{}
	started  bool
}

// NewBridge wraps eng. The engine must not be driven by anyone else after
// Start: the bridge's loop goroutine becomes the one goroutine of the DES
// threading contract.
func NewBridge(eng *des.Engine, cfg BridgeConfig) *Bridge {
	if cfg.SubmitBuffer <= 0 {
		cfg.SubmitBuffer = 256
	}
	return &Bridge{
		eng:    eng,
		cfg:    cfg,
		subCh:  make(chan submission, cfg.SubmitBuffer),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		idleCh: make(chan struct{}),
	}
}

// Start launches the event loop. Everything scheduled on the engine before
// Start (pool pre-instantiation happens synchronously, so typically nothing)
// runs under the loop's pacing.
func (b *Bridge) Start() {
	b.mu.Lock()
	if b.started {
		b.mu.Unlock()
		return
	}
	b.started = true
	b.mu.Unlock()
	go b.loop()
}

// SimNow is the current virtual time as of the loop's last step. Safe from
// any goroutine.
func (b *Bridge) SimNow() des.Time { return des.Time(b.simNow.Load()) }

// Draining reports whether Drain has begun.
func (b *Bridge) Draining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// InFlight is the number of submissions accepted but not yet answered.
func (b *Bridge) InFlight() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// Submit carries one request into the DES world and blocks until its
// RequestResult comes back (or ctx ends; the request still runs to
// completion inside the simulation, its result is discarded). The returned
// error is only a bridge-level refusal (ErrBridgeBusy, ErrBridgeDraining) or
// ctx's error — dispatcher-level outcomes, including rejections, arrive
// inside the RequestResult.
func (b *Bridge) Submit(ctx context.Context, d *serve.Dispatcher, tid int64) (serve.RequestResult, error) {
	return b.submit(ctx, func(done func(serve.RequestResult)) {
		d.SubmitTID(tid, done)
	})
}

// SubmitRouted is Submit through a serve.Router shard: the request joins
// the shard's pending batch, so submissions injected within one DES event —
// the greedy channel drain below makes concurrent arrivals land that way —
// are admitted together by one batched pass. A key that matches no shard
// comes back as a refused RequestResult carrying serve.ErrUnknownModule.
func (b *Bridge) SubmitRouted(ctx context.Context, rt *serve.Router, key string, tid int64) (serve.RequestResult, error) {
	return b.submit(ctx, func(done func(serve.RequestResult)) {
		if err := rt.Submit(key, tid, done); err != nil {
			done(serve.RequestResult{Err: err})
		}
	})
}

// submit carries one request closure into the DES world and blocks until
// its RequestResult comes back.
func (b *Bridge) submit(ctx context.Context, fn func(done func(serve.RequestResult))) (serve.RequestResult, error) {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return serve.RequestResult{}, ErrBridgeDraining
	}
	b.pending++
	b.mu.Unlock()

	sub := submission{submit: fn, result: make(chan serve.RequestResult, 1)}
	select {
	case b.subCh <- sub:
	default:
		b.settle()
		return serve.RequestResult{}, ErrBridgeBusy
	}
	select {
	case r := <-sub.result:
		return r, nil
	case <-ctx.Done():
		return serve.RequestResult{}, ctx.Err()
	}
}

// Do runs fn on the loop goroutine, serialized against event stepping, and
// waits for it to finish. It is how concurrent observers (the introspection
// and container endpoints) read or mutate simulation-side state without
// violating the DES threading contract. Requires Start; after the loop has
// exited, fn runs directly in the caller — the loop goroutine is gone, so
// the caller is the only one left touching the engine. Unlike Submit, Do
// bypasses the draining gate: introspection stays available during a drain.
func (b *Bridge) Do(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	sub := submission{run: func() { fn(); close(done) }}
	select {
	case b.subCh <- sub:
	case <-b.doneCh:
		fn()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return nil
	case <-b.doneCh:
		// The loop exited with our closure possibly still queued. It is gone
		// for good (the loop never drains subCh after stopping), and no other
		// goroutine touches the engine now, so run it here — unless the loop
		// got to it just before exiting.
		select {
		case <-done:
		default:
			fn()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// settle retires one accepted submission and releases Drain when the last
// one leaves.
func (b *Bridge) settle() {
	b.mu.Lock()
	b.pending--
	if b.pending == 0 && b.draining {
		select {
		case <-b.idleCh: // already closed
		default:
			close(b.idleCh)
		}
	}
	b.mu.Unlock()
}

// Drain gracefully shuts the bridge down: new submissions are refused with
// ErrBridgeDraining, accepted ones flush to their final results, then the
// loop stops. Returns ctx's error if the flush outlives it (the loop keeps
// running in that case so late results still settle).
func (b *Bridge) Drain(ctx context.Context) error {
	b.mu.Lock()
	wasDraining := b.draining
	b.draining = true
	idle := b.pending == 0
	if idle && !wasDraining {
		select {
		case <-b.idleCh:
		default:
			close(b.idleCh)
		}
	}
	b.mu.Unlock()
	select {
	case <-b.idleCh:
	case <-ctx.Done():
		return ctx.Err()
	}
	b.Stop()
	return nil
}

// Stop halts the loop without waiting for in-flight work (tests, or a drain
// that ran out of patience). Idempotent.
func (b *Bridge) Stop() {
	select {
	case <-b.stopCh:
	default:
		close(b.stopCh)
	}
	b.mu.Lock()
	started := b.started
	b.mu.Unlock()
	if started {
		<-b.doneCh
	}
}

// loop is the one goroutine of the DES threading contract: it alternates
// between stepping due events (paced against the wall clock when Dilation >
// 0) and injecting submissions at the virtual time mapped from their wall
// arrival.
func (b *Bridge) loop() {
	defer close(b.doneCh)
	wallStart := time.Now()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	// Idle sampling ticker: with pacing on, windows must close even when no
	// events are due. At dilation 0 there is no wall→virtual mapping, so the
	// pre-step Sampler calls below are the sole (and deterministic) trigger.
	var tickerC <-chan time.Time
	if b.cfg.Sampler != nil && b.cfg.Dilation > 0 {
		tick := b.cfg.SamplerTick
		if tick <= 0 {
			tick = 250 * time.Millisecond
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		tickerC = ticker.C
	}
	for {
		// Step every due event; arm the timer for the earliest future one.
		var timerC <-chan time.Time
		for {
			t, ok := b.eng.NextAt()
			if !ok {
				break
			}
			if b.cfg.Dilation > 0 {
				due := wallStart.Add(time.Duration(float64(t) * b.cfg.Dilation))
				if wait := time.Until(due); wait > 0 {
					timer.Reset(wait)
					timerC = timer.C
					break
				}
			}
			if b.cfg.Sampler != nil {
				b.cfg.Sampler(int64(t))
			}
			b.eng.Step()
			b.simNow.Store(int64(b.eng.Now()))
		}
		select {
		case sub := <-b.subCh:
			b.inject(sub, wallStart)
			// Greedy drain: submissions already waiting behind the first are
			// injected before any of them is stepped, so a concurrent burst
			// enters the DES at the same virtual instant (exactly so at
			// dilation 0) and the router coalesces it into per-shard batches.
			// Bounded so a hot submitter cannot starve pacing and stop.
		more:
			for i := 0; i < maxInjectBurst; i++ {
				select {
				case sub := <-b.subCh:
					b.inject(sub, wallStart)
				default:
					break more
				}
			}
		case <-timerC:
			timerC = nil
		case <-tickerC:
			// Age windows to the wall-mapped virtual instant; the engine's own
			// clock only moves when events step, but wall time keeps flowing.
			if t := des.Time(float64(time.Since(wallStart)) / b.cfg.Dilation); t > b.eng.Now() {
				b.cfg.Sampler(int64(t))
			}
		case <-b.stopCh:
			return
		}
		// A dead timer fire left in the channel would make the next select
		// spin once; drain it before re-arming.
		if timerC != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
}

// maxInjectBurst bounds the loop's greedy channel drain per select cycle.
const maxInjectBurst = 512

// inject schedules one submission into the DES at the virtual instant
// mapped from the wall clock (clamped forward to the engine's current time —
// virtual time never runs backwards). At Dilation 0 there is no wall
// mapping: the request enters at the engine's current time, which is what
// makes a sequential request script deterministic.
func (b *Bridge) inject(sub submission, wallStart time.Time) {
	if sub.run != nil {
		// A Do closure: run between events, not as one. Due events were
		// stepped before the loop selected this submission, so the state it
		// sees is consistent as of the current virtual time.
		sub.run()
		return
	}
	at := b.eng.Now()
	if b.cfg.Dilation > 0 {
		if t := des.Time(float64(time.Since(wallStart)) / b.cfg.Dilation); t > at {
			at = t
		}
	}
	b.eng.At(at, func() {
		sub.submit(func(r serve.RequestResult) {
			sub.result <- r
			b.settle()
		})
	})
}

package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/obs/slo"
)

// get fetches url and returns the response and full body.
func get(t *testing.T, client *http.Client, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestTimeSeriesByteIdenticalAtDilationZero is the determinism acceptance
// test: two gateways at dilation 0 running the same sequential request
// script must serve byte-identical /v1/timeseries bodies. Window boundaries
// derive only from virtual time (the sampler runs before each event step),
// so no wall-clock jitter can leak into the series.
func TestTimeSeriesByteIdenticalAtDilationZero(t *testing.T) {
	run := func() []byte {
		gw, err := New(Config{
			Functions:      []FunctionConfig{DefaultFunction()},
			Bridge:         BridgeConfig{Dilation: 0},
			SampleInterval: 100 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		gw.Start()
		ts := httptest.NewServer(gw)
		defer func() {
			ts.Close()
			gw.Bridge().Stop()
		}()
		client := ts.Client()
		for i := 0; i < 40; i++ {
			resp, body := invoke(t, client, ts.URL+"/v1/functions/request-handler", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("invoke %d: status %d: %s", i, resp.StatusCode, body)
			}
		}
		resp, body := get(t, client, ts.URL+"/v1/timeseries")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/timeseries status %d: %s", resp.StatusCode, body)
		}
		var tr TimeSeriesResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatalf("decode timeseries: %v", err)
		}
		if tr.Stats.Published == 0 {
			t.Fatalf("no windows closed over the run: %+v", tr.Stats)
		}
		return body
	}
	a := run()
	b := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("timeseries bodies differ across identical dilation-0 runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestTailSamplingBoundedUnderConcurrentLoad is the tail-sampler acceptance
// test: 8 concurrent clients against a deterministically faulty function.
// The pending-span buffer must stay under its configured bound while every
// admitted error keeps its span tree in the ring (run with -race to also
// exercise the sampler's locking against concurrent finishes).
func TestTailSamplingBoundedUnderConcurrentLoad(t *testing.T) {
	tele := obs.New(obs.Config{TraceCapacity: 1 << 15})
	fc := DefaultFunction()
	fc.MaxRetries = 0 // a trap is a final error, not a retry
	gw, err := New(Config{
		Functions:    []FunctionConfig{fc},
		Bridge:       BridgeConfig{Dilation: 0},
		Telemetry:    tele,
		TailSampling: &obs.TailConfig{}, // defaults: 4096 buffered spans
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	ts := httptest.NewServer(gw)
	defer ts.Close()

	fn, ok := gw.Function("request-handler")
	if !ok {
		t.Fatal("function missing")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Fault injection mutates engine state, so it hops onto the loop
	// goroutine like every other simulation mutation.
	if err := gw.Bridge().Do(ctx, func() {
		fn.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 11, TrapRate: 0.4}))
	}); err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 8, 25
	var mu sync.Mutex
	var errTIDs []int64
	var okCount, errCount, errUnsampled, otherCount int
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perClient; i++ {
				req, err := http.NewRequest(http.MethodPost,
					ts.URL+"/v1/functions/request-handler", bytes.NewReader([]byte("payload")))
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				tid, _ := strconv.ParseInt(resp.Header.Get("X-Trace-Tid"), 10, 64)
				sampled := resp.Header.Get("X-Trace-Sampled")
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					okCount++
				case http.StatusInternalServerError:
					errCount++
					errTIDs = append(errTIDs, tid)
					if sampled != "true" {
						errUnsampled++
					}
				default:
					otherCount++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	gw.Bridge().Stop()

	if errCount == 0 || okCount == 0 {
		t.Fatalf("load mix degenerate: ok=%d err=%d other=%d", okCount, errCount, otherCount)
	}
	if errUnsampled != 0 {
		t.Fatalf("%d of %d errors reported unsampled traces", errUnsampled, errCount)
	}
	st := tele.Tracer().TailStats()
	if st.PendingPeak > obs.DefaultTailBufferedSpans {
		t.Fatalf("pending peak %d exceeds bound %d", st.PendingPeak, obs.DefaultTailBufferedSpans)
	}
	if st.EvictedTracks != 0 {
		t.Fatalf("bound forced %d evictions; retention check unsound: %+v", st.EvictedTracks, st)
	}
	if st.PendingSpans != 0 {
		t.Fatalf("spans still pending after drain: %+v", st)
	}
	if st.SampledOutTracks == 0 {
		t.Fatalf("healthy traffic was never sampled out: %+v", st)
	}
	if int(st.KeptTracks) < errCount {
		t.Fatalf("kept %d tracks < %d errors", st.KeptTracks, errCount)
	}
	if d := tele.Tracer().Dropped(); d != 0 {
		t.Fatalf("ring overwrote %d spans; raise TraceCapacity", d)
	}
	// 100% error-trace retention: every errored request's TID has spans.
	have := map[int64]bool{}
	for _, s := range tele.Tracer().Spans() {
		have[s.TID] = true
	}
	for _, tid := range errTIDs {
		if !have[tid] {
			t.Fatalf("error tid %d has no spans in the ring", tid)
		}
	}
}

// syncBuffer is a goroutine-safe access-log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for _, l := range bytes.Split(b.buf.Bytes(), []byte("\n")) {
		if len(l) > 0 {
			out = append(out, string(l))
		}
	}
	return out
}

// waitLines polls until the access log holds n lines (the logger writes
// after the response is flushed, so the client can race ahead of it).
func waitLines(t *testing.T, buf *syncBuffer, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		lines := buf.Lines()
		if len(lines) >= n {
			return lines
		}
		if time.Now().After(deadline) {
			t.Fatalf("access log has %d lines, want %d: %q", len(lines), n, lines)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAccessLogFormats drives the same request script through both log
// formats: JSON lines must decode with the full per-request record, and the
// default text format must keep its original shape.
func TestAccessLogFormats(t *testing.T) {
	script := func(t *testing.T, ts *httptest.Server) {
		client := ts.Client()
		resp, _ := invoke(t, client, ts.URL+"/v1/functions/request-handler",
			map[string]string{"X-Request-Id": "req-abc"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke status %d", resp.StatusCode)
		}
		if resp, _ := invoke(t, client, ts.URL+"/v1/functions/nope", nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown module status %d", resp.StatusCode)
		}
		if resp, _ := get(t, client, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
	}

	t.Run("json", func(t *testing.T) {
		buf := &syncBuffer{}
		gw, err := New(Config{
			Functions:       []FunctionConfig{DefaultFunction()},
			Bridge:          BridgeConfig{Dilation: 0},
			AccessLog:       buf,
			AccessLogFormat: "json",
		})
		if err != nil {
			t.Fatal(err)
		}
		gw.Start()
		ts := httptest.NewServer(gw)
		defer func() {
			ts.Close()
			gw.Bridge().Stop()
		}()
		script(t, ts)
		lines := waitLines(t, buf, 3)

		var recs []accessRecord
		for i, l := range lines {
			var rec accessRecord
			if err := json.Unmarshal([]byte(l), &rec); err != nil {
				t.Fatalf("line %d is not JSON: %v: %s", i, err, l)
			}
			recs = append(recs, rec)
		}
		cases := []struct {
			name              string
			rec               accessRecord
			method, path      string
			status            int
			module, requestID string
			wantInvokeFields  bool
		}{
			{"invoke-ok", recs[0], "POST", "/v1/functions/request-handler", 200, "request-handler", "req-abc", true},
			{"unknown-module", recs[1], "POST", "/v1/functions/nope", 404, "nope", "", false},
			{"healthz", recs[2], "GET", "/healthz", 200, "", "", false},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				r := tc.rec
				if r.Method != tc.method || r.Path != tc.path || r.Status != tc.status {
					t.Fatalf("got %s %s %d, want %s %s %d", r.Method, r.Path, r.Status, tc.method, tc.path, tc.status)
				}
				if r.Module != tc.module {
					t.Fatalf("module = %q, want %q", r.Module, tc.module)
				}
				if tc.requestID != "" && r.RequestID != tc.requestID {
					t.Fatalf("request_id = %q, want %q", r.RequestID, tc.requestID)
				}
				if r.WallMs < 0 {
					t.Fatalf("wall_ms = %v", r.WallMs)
				}
				if got := r.QueueLen != nil && r.InFlight != nil && r.SimLatencyMs != nil &&
					r.Cold != nil && r.TraceSampled != nil; got != tc.wantInvokeFields {
					t.Fatalf("invoke fields present = %v, want %v: %+v", got, tc.wantInvokeFields, r)
				}
				if tc.wantInvokeFields && r.TraceTID == "" {
					t.Fatal("trace_tid missing on invoke line")
				}
			})
		}
	})

	t.Run("text-default", func(t *testing.T) {
		buf := &syncBuffer{}
		gw, err := New(Config{
			Functions: []FunctionConfig{DefaultFunction()},
			Bridge:    BridgeConfig{Dilation: 0},
			AccessLog: buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		gw.Start()
		ts := httptest.NewServer(gw)
		defer func() {
			ts.Close()
			gw.Bridge().Stop()
		}()
		script(t, ts)
		lines := waitLines(t, buf, 3)
		for i, want := range []string{
			"POST /v1/functions/request-handler 200 req_id=req-abc",
			"POST /v1/functions/nope 404",
			"GET /healthz 200",
		} {
			if !bytes.Contains([]byte(lines[i]), []byte(want)) {
				t.Fatalf("text line %d = %q, want substring %q", i, lines[i], want)
			}
		}
		if !bytes.Contains([]byte(lines[0]), []byte(" q=")) {
			t.Fatalf("invoke text line lost queue pressure: %q", lines[0])
		}
	})
}

// TestSLOBurnRateOverHTTP drives an all-bad workload and asserts the page
// alert is visible on every surface: /v1/slo, /v1/cluster, and /metrics.
func TestSLOBurnRateOverHTTP(t *testing.T) {
	fc := DefaultFunction()
	fc.MaxRetries = 0
	gw, err := New(Config{
		Functions:      []FunctionConfig{fc},
		Bridge:         BridgeConfig{Dilation: 0},
		SampleInterval: time.Millisecond,
		SLOObjectives:  DefaultSLOObjectives(0.99, 0.95, 50*time.Millisecond),
		// Each request burns a few ms of sim time; the base window must keep
		// the short window (base/12) wide enough to always hold bad events
		// under sustained failure, or the alert flaps.
		SLOBaseWindow: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	ts := httptest.NewServer(gw)
	defer func() {
		ts.Close()
		gw.Bridge().Stop()
	}()
	client := ts.Client()

	fn, _ := gw.Function("request-handler")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gw.Bridge().Do(ctx, func() {
		fn.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 3, TrapRate: 1}))
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		resp, _ := invoke(t, client, ts.URL+"/v1/functions/request-handler", nil)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("invoke %d: status %d, want 500", i, resp.StatusCode)
		}
	}

	resp, body := get(t, client, ts.URL+"/v1/slo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slo status %d: %s", resp.StatusCode, body)
	}
	var st slo.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode slo status: %v", err)
	}
	if st.EvaluatedWindows == 0 {
		t.Fatalf("no windows evaluated: %s", body)
	}
	var pageFiring bool
	for _, o := range st.Objectives {
		if o.Name != "availability" {
			continue
		}
		if o.BudgetRemaining != 0 {
			t.Fatalf("all-bad traffic left budget %v", o.BudgetRemaining)
		}
		for _, a := range o.Alerts {
			if a.Severity == slo.Page && a.Firing {
				pageFiring = true
			}
		}
	}
	if !pageFiring {
		t.Fatalf("page alert not firing under 100%% errors: %s", body)
	}

	// The cluster introspection mirrors the same state.
	if _, body := get(t, client, ts.URL+"/v1/cluster"); !bytes.Contains(body, []byte(`"slo"`)) {
		t.Fatalf("/v1/cluster lacks slo state: %s", body)
	}
	// And the burn-rate gauge reaches the Prometheus exposition.
	if _, body := get(t, client, ts.URL+"/metrics"); !bytes.Contains(body, []byte("slo_burn_rate_milli")) {
		t.Fatalf("/metrics lacks slo_burn_rate_milli:\n%s", body)
	}
}

// TestObservabilityEndpointsDisabled pins the zero-config behaviour: without
// SampleInterval the new surfaces 404 with stable error codes.
func TestObservabilityEndpointsDisabled(t *testing.T) {
	_, ts := newTestGateway(t, DefaultFunction())
	client := ts.Client()
	for _, path := range []string{"/v1/timeseries", "/v1/slo"} {
		resp, body := get(t, client, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status %d, want 404: %s", path, resp.StatusCode, body)
		}
		var e struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" {
			t.Fatalf("%s error envelope: %v: %s", path, err, body)
		}
	}
}

package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newLazyGateway boots a dilation-0 gateway with one fixed function and
// lazy creation enabled for everything else.
func newLazyGateway(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	tmpl := DefaultFunction()
	tmpl.PoolSize = 1
	tmpl.MaxConcurrency = 2
	gw, err := New(Config{
		Functions:    []FunctionConfig{DefaultFunction()},
		LazyTemplate: &tmpl,
		Bridge:       BridgeConfig{Dilation: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	ts := httptest.NewServer(gw)
	t.Cleanup(func() {
		ts.Close()
		gw.Bridge().Stop()
	})
	return gw, ts
}

// TestLazyFunctionCreation: the first request for an unregistered handler
// variant creates its function (engine, pool, shard) on the fly; later
// requests reuse it; a genuinely unknown workload stays a 404.
func TestLazyFunctionCreation(t *testing.T) {
	gw, ts := newLazyGateway(t)
	client := &http.Client{Timeout: 30 * time.Second}

	for i := 0; i < 3; i++ {
		resp, body := invoke(t, client, ts.URL+"/v1/functions/request-handler-v7", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lazy invoke %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	if _, ok := gw.Function("request-handler-v7"); !ok {
		t.Fatal("lazy function not registered after invoke")
	}
	if len(gw.Functions()) != 2 {
		t.Fatalf("functions = %d, want 2 (fixed + lazy)", len(gw.Functions()))
	}
	if got := len(gw.Router().Modules()); got != 2 {
		t.Fatalf("router shards = %d, want 2", got)
	}

	// Unknown workloads still 404 with the stable error code.
	resp, body := invoke(t, client, ts.URL+"/v1/functions/no-such-module", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown module: status %d body %s", resp.StatusCode, body)
	}
	var e struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "unknown_function" {
		t.Fatalf("unknown module error body = %s (err %v)", body, err)
	}

	// The per-module labeled router counters are live on /metrics.
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(mbody)
	if !strings.Contains(text, `router_completed_total{module="request-handler-v7"} 3`) {
		t.Fatalf("per-module router counter missing from /metrics:\n%s", grepLines(text, "router_"))
	}
	if !strings.Contains(text, `router_shards 2`) {
		t.Fatalf("router_shards gauge missing:\n%s", grepLines(text, "router_"))
	}

	// The cluster introspection reports both shards and the batch counters.
	cresp, err := client.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st ClusterStatus
	if err := json.NewDecoder(cresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if st.Router.Shards != 2 {
		t.Fatalf("cluster router shards = %d, want 2", st.Router.Shards)
	}
	if st.Router.Mode != "sharded" {
		t.Fatalf("cluster router mode = %q", st.Router.Mode)
	}
	if st.Router.Batches == 0 || st.Router.BatchedRequests < 3 {
		t.Fatalf("batch accounting empty: %+v", st.Router)
	}
}

// TestLazyDisabledStill404s: without a template, unregistered modules are
// refused — the pre-router behaviour.
func TestLazyDisabledStill404s(t *testing.T) {
	_, ts := newTestGateway(t, DefaultFunction())
	client := &http.Client{Timeout: 10 * time.Second}
	resp, _ := invoke(t, client, ts.URL+"/v1/functions/request-handler-v7", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// grepLines filters text to lines containing sub, for failure messages.
func grepLines(text, sub string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

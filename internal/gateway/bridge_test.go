package gateway

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"wasmcontainers/internal/des"
)

// TestBridgeBusy: with the loop not draining the channel, submissions past
// the buffer bound fail fast with ErrBridgeBusy instead of queueing.
func TestBridgeBusy(t *testing.T) {
	b := NewBridge(des.NewEngine(), BridgeConfig{SubmitBuffer: 1})
	// Deliberately not started: the single buffer slot fills and stays full.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupies the one buffered slot, then blocks awaiting a result that
		// never comes until ctx is canceled.
		_, err := b.Submit(ctx, nil, 1)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("first submit err = %v, want context.Canceled", err)
		}
	}()
	// Wait until the first submission holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(b.subCh) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first submission never reached the channel")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := b.Submit(context.Background(), nil, 2)
	if !errors.Is(err, ErrBridgeBusy) {
		t.Fatalf("second submit err = %v, want ErrBridgeBusy", err)
	}
	cancel()
	wg.Wait()
}

// TestBridgeDrainRefusesNew: after Drain begins, Submit is refused with
// ErrBridgeDraining before touching the channel.
func TestBridgeDrainRefusesNew(t *testing.T) {
	b := NewBridge(des.NewEngine(), BridgeConfig{})
	b.Start()
	if err := b.Drain(context.Background()); err != nil {
		t.Fatalf("drain of idle bridge: %v", err)
	}
	_, err := b.Submit(context.Background(), nil, 1)
	if !errors.Is(err, ErrBridgeDraining) {
		t.Fatalf("submit err = %v, want ErrBridgeDraining", err)
	}
	if !b.Draining() {
		t.Error("Draining() = false after Drain")
	}
}

// TestBridgeDrainIdempotent: a second Drain returns immediately.
func TestBridgeDrainIdempotent(t *testing.T) {
	b := NewBridge(des.NewEngine(), BridgeConfig{})
	b.Start()
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := b.Drain(ctx); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		cancel()
	}
}

// TestBridgeDo: closures run on the loop goroutine while it lives, and
// directly in the caller once it has stopped — either way Do returns only
// after the closure ran.
func TestBridgeDo(t *testing.T) {
	b := NewBridge(des.NewEngine(), BridgeConfig{})
	b.Start()
	ran := false
	if err := b.Do(context.Background(), func() { ran = true }); err != nil {
		t.Fatalf("Do on live loop: %v", err)
	}
	if !ran {
		t.Fatal("closure did not run")
	}
	b.Stop()
	ran = false
	if err := b.Do(context.Background(), func() { ran = true }); err != nil {
		t.Fatalf("Do after stop: %v", err)
	}
	if !ran {
		t.Fatal("closure did not run after stop")
	}
}

// TestBridgeStopIdempotent: Stop twice is safe and leaves Do usable.
func TestBridgeStopIdempotent(t *testing.T) {
	b := NewBridge(des.NewEngine(), BridgeConfig{})
	b.Start()
	b.Stop()
	b.Stop()
}

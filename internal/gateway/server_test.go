package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wasmcontainers/internal/serve"
)

// newTestGateway boots a gateway at dilation 0 (deterministic, unpaced) and
// registers cleanup that stops the bridge loop.
func newTestGateway(t *testing.T, fc FunctionConfig) (*Server, *httptest.Server) {
	t.Helper()
	gw, err := New(Config{
		Functions: []FunctionConfig{fc},
		Bridge:    BridgeConfig{Dilation: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	ts := httptest.NewServer(gw)
	t.Cleanup(func() {
		ts.Close()
		gw.Bridge().Stop()
	})
	return gw, ts
}

func invoke(t *testing.T, client *http.Client, url string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestConcurrentServingConservation is the DES-bridge stress test: 8
// concurrent clients hammer one function (tight queue so real rejections
// occur), observers scrape the introspection surfaces mid-flight, and after
// a graceful drain the dispatcher's admission identity
// Submitted == Completed + Rejected + Expired + Failed must balance exactly.
// Run under -race this also proves the bridge upholds the DES threading
// contract against truly concurrent HTTP goroutines.
func TestConcurrentServingConservation(t *testing.T) {
	fc := DefaultFunction()
	fc.MaxConcurrency = 2
	fc.PoolSize = 2
	fc.QueueDepth = 4
	fc.QueueDeadline = 10 * time.Millisecond // simulated: force some expiries
	gw, ts := newTestGateway(t, fc)

	const clients, perClient = 8, 20
	statuses := make(chan int, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < perClient; i++ {
				resp, _ := invoke(t, client, ts.URL+"/v1/functions/"+fc.Module, nil)
				statuses <- resp.StatusCode
			}
		}()
	}
	// Scrape every read-only surface while the load runs; under -race this
	// is what catches introspection touching loop-owned state directly.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		client := &http.Client{Timeout: 30 * time.Second}
		for i := 0; i < 10; i++ {
			for _, p := range []string{"/v1/cluster", "/metrics", "/healthz", "/v1/trace"} {
				resp, err := client.Get(ts.URL + p)
				if err != nil {
					t.Errorf("scrape %s: %v", p, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	<-scrapeDone
	close(statuses)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	counts := map[int]int{}
	total := 0
	for s := range statuses {
		counts[s]++
		total++
		switch s {
		case http.StatusOK, http.StatusTooManyRequests,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Errorf("unexpected status %d", s)
		}
	}
	if total != clients*perClient {
		t.Fatalf("responses = %d, want %d", total, clients*perClient)
	}
	if counts[http.StatusOK] == 0 {
		t.Fatal("no request succeeded")
	}

	fn, _ := gw.Function(fc.Module)
	st := fn.Dispatcher().Stats()
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		t.Fatalf("conservation identity broken after drain: %+v", st)
	}
	if st.Submitted == 0 {
		t.Fatal("dispatcher saw no traffic")
	}
	t.Logf("statuses=%v stats=%+v", counts, st)
}

// TestDeterministicAtDilationZero: the same sequential request script against
// two fresh gateways at dilation 0 must produce byte-identical dispatcher
// stats and identical simulated latencies — the property the bench harness
// and regression baselines rely on.
func TestDeterministicAtDilationZero(t *testing.T) {
	script := func() (serve.DispatcherStats, []string) {
		fc := DefaultFunction()
		gw, ts := newTestGateway(t, fc)
		client := &http.Client{Timeout: 30 * time.Second}
		var lats []string
		for i := 0; i < 12; i++ {
			resp, _ := invoke(t, client, ts.URL+"/v1/functions/"+fc.Module, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("request %d: status %d", i, resp.StatusCode)
			}
			lats = append(lats, resp.Header.Get("X-Sim-Latency-Ms"))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := gw.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		fn, _ := gw.Function(fc.Module)
		return fn.Dispatcher().Stats(), lats
	}
	st1, lat1 := script()
	st2, lat2 := script()
	if st1 != st2 {
		t.Fatalf("stats diverged:\n  run1 %+v\n  run2 %+v", st1, st2)
	}
	for i := range lat1 {
		if lat1[i] != lat2[i] {
			t.Fatalf("latency %d diverged: %s vs %s", i, lat1[i], lat2[i])
		}
	}
}

// TestRequestIDPropagation: a client-supplied X-Request-Id is echoed back,
// its numeric companion X-Trace-Tid names the request's span track, and the
// tracer really recorded spans on that track.
func TestRequestIDPropagation(t *testing.T) {
	fc := DefaultFunction()
	gw, ts := newTestGateway(t, fc)
	client := &http.Client{Timeout: 30 * time.Second}

	resp, _ := invoke(t, client, ts.URL+"/v1/functions/"+fc.Module,
		map[string]string{"X-Request-Id": "trace-me-42"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Fatalf("X-Request-Id = %q, want echo of trace-me-42", got)
	}
	tid, err := strconv.ParseInt(resp.Header.Get("X-Trace-Tid"), 10, 64)
	if err != nil || tid <= 0 {
		t.Fatalf("X-Trace-Tid = %q, want positive integer", resp.Header.Get("X-Trace-Tid"))
	}

	// A second request without the header gets a generated id tied to its tid.
	resp2, _ := invoke(t, client, ts.URL+"/v1/functions/"+fc.Module, nil)
	tid2, _ := strconv.ParseInt(resp2.Header.Get("X-Trace-Tid"), 10, 64)
	wantID := fmt.Sprintf("req-%08d", tid2)
	if got := resp2.Header.Get("X-Request-Id"); got != wantID {
		t.Fatalf("generated X-Request-Id = %q, want %q", got, wantID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	found := false
	for _, sp := range gw.Telemetry().Tracer().Spans() {
		if sp.TID == tid {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no span recorded on trace track %d", tid)
	}
}

// TestShutdownRefusesNewWork: a draining gateway answers 503 with the
// "draining" error code on new invokes and flips /healthz to 503.
func TestShutdownRefusesNewWork(t *testing.T) {
	fc := DefaultFunction()
	gw, ts := newTestGateway(t, fc)
	client := &http.Client{Timeout: 30 * time.Second}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, body := invoke(t, client, ts.URL+"/v1/functions/"+fc.Module, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("invoke while draining: status %d, want 503", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("unmarshal error body: %v", err)
	}
	if env.Error.Code != "draining" {
		t.Fatalf("error code = %q, want draining", env.Error.Code)
	}
	hr, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hr.StatusCode)
	}
}

// TestUnknownFunction404: an unregistered module is a 404 with a stable code.
func TestUnknownFunction404(t *testing.T) {
	_, ts := newTestGateway(t, DefaultFunction())
	client := &http.Client{Timeout: 30 * time.Second}
	resp, body := invoke(t, client, ts.URL+"/v1/functions/no-such-module", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "unknown_function" {
		t.Fatalf("code = %q", env.Error.Code)
	}
}

// TestMetricsLiveScrape: after traffic, /metrics exposes populated
// dispatcher histograms and the gateway's own HTTP counters — the same
// registry the offline harness snapshots, scraped mid-flight.
func TestMetricsLiveScrape(t *testing.T) {
	fc := DefaultFunction()
	_, ts := newTestGateway(t, fc)
	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < 3; i++ {
		resp, _ := invoke(t, client, ts.URL+"/v1/functions/"+fc.Module, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content-type = %q", ct)
	}
	for _, want := range []string{"dispatch_latency_ns_count", "gateway_http_requests_total", "dispatch_completed_total 3"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestClusterIntrospection: /v1/cluster reports the function's pool and
// dispatcher state consistently with the traffic it served.
func TestClusterIntrospection(t *testing.T) {
	fc := DefaultFunction()
	_, ts := newTestGateway(t, fc)
	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < 5; i++ {
		invoke(t, client, ts.URL+"/v1/functions/"+fc.Module, nil)
	}
	resp, err := client.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var st ClusterStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) == 0 || len(st.Functions) != 1 {
		t.Fatalf("nodes=%d functions=%d", len(st.Nodes), len(st.Functions))
	}
	f := st.Functions[0]
	if f.Module != fc.Module {
		t.Fatalf("module = %q", f.Module)
	}
	if f.Stats.Completed != 5 {
		t.Fatalf("completed = %d, want 5", f.Stats.Completed)
	}
	// The pool's charge reaches the node split in two: shared artifacts
	// (code, baseline image — one per-node copy) plus the page-rounded
	// private remainder, which together cover the raw pool bytes.
	if f.PoolMemoryBytes <= 0 || f.ChargedBytes+f.SharedBytes < f.PoolMemoryBytes {
		t.Fatalf("pool memory %d not charged to node (private %d + shared %d)",
			f.PoolMemoryBytes, f.ChargedBytes, f.SharedBytes)
	}
	if f.SharedBytes <= 0 {
		t.Fatal("no shared artifacts charged to the node")
	}
	if f.Node == "" {
		t.Fatal("function reports no placement node")
	}
	if !st.Nodes[0].Alive {
		t.Fatal("healthy node reported dead")
	}
	if st.Nodes[0].MemUsedBytes <= 0 {
		t.Fatal("node reports no memory in use")
	}
}

// TestContainerLifecycle drives the Docker-shaped surface end to end:
// create → start → list → stats, against the simulated cluster.
func TestContainerLifecycle(t *testing.T) {
	_, ts := newTestGateway(t, DefaultFunction())
	client := &http.Client{Timeout: 30 * time.Second}

	resp, err := client.Post(ts.URL+"/v1/containers/create?name=web",
		"application/json", strings.NewReader(`{"Runtime":"crun-wamr"}`))
	if err != nil {
		t.Fatal(err)
	}
	var created ContainerCreateResponse
	err = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("create: status %d id %q", resp.StatusCode, created.ID)
	}

	// Before start the pod is created, not running: plain list hides it.
	var list []ContainerSummary
	getJSON(t, client, ts.URL+"/v1/containers/json", &list)
	if len(list) != 0 {
		t.Fatalf("pre-start list = %d entries, want 0", len(list))
	}
	getJSON(t, client, ts.URL+"/v1/containers/json?all=1", &list)
	if len(list) != 1 || list[0].State != "created" {
		t.Fatalf("pre-start all list = %+v", list)
	}

	resp, err = client.Post(ts.URL+"/v1/containers/"+created.ID+"/start", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("start: status %d, want 204", resp.StatusCode)
	}

	getJSON(t, client, ts.URL+"/v1/containers/json", &list)
	if len(list) != 1 || list[0].State != "running" {
		t.Fatalf("post-start list = %+v", list)
	}

	var stats ContainerStats
	getJSON(t, client, ts.URL+"/v1/containers/"+created.ID+"/stats", &stats)
	if stats.ID != created.ID || stats.MemoryStats.Usage <= 0 {
		t.Fatalf("stats = %+v, want positive memory usage", stats)
	}

	resp, err = client.Post(ts.URL+"/v1/containers/nope/start", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("start unknown: status %d, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, client *http.Client, url string, v any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestDilationPacesWallClock: at dilation > 0 a completion event at virtual
// time T fires no earlier than T*dilation wall nanoseconds after start, so
// the observed wall latency must be at least the dilated simulated latency.
func TestDilationPacesWallClock(t *testing.T) {
	const dilation = 5.0
	gw, err := New(Config{
		Functions: []FunctionConfig{DefaultFunction()},
		Bridge:    BridgeConfig{Dilation: dilation},
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	ts := httptest.NewServer(gw)
	t.Cleanup(func() {
		ts.Close()
		gw.Bridge().Stop()
	})
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	resp, _ := invoke(t, client, ts.URL+"/v1/functions/request-handler", nil)
	wall := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	simMs, err := strconv.ParseFloat(resp.Header.Get("X-Sim-Latency-Ms"), 64)
	if err != nil {
		t.Fatalf("X-Sim-Latency-Ms = %q", resp.Header.Get("X-Sim-Latency-Ms"))
	}
	// Timers never fire early: the wall time must cover the dilated
	// simulated latency (minus a small measurement epsilon).
	minWall := time.Duration(simMs*dilation*float64(time.Millisecond)) - time.Millisecond
	if wall < minWall {
		t.Fatalf("wall latency %s < dilated sim latency %s (sim %.3fms × %g)",
			wall, minWall, simMs, dilation)
	}
}

// TestNodeFailover: POST /v1/cluster/nodes/{node}/fail kills the node
// hosting a function, re-homes its memory charge to a survivor, and keeps
// the function serving across the failure.
func TestNodeFailover(t *testing.T) {
	fc := DefaultFunction()
	gw, err := New(Config{
		Functions:    []FunctionConfig{fc},
		Bridge:       BridgeConfig{Dilation: 0},
		ClusterNodes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	ts := httptest.NewServer(gw)
	defer func() {
		ts.Close()
		gw.Bridge().Stop()
	}()
	client := &http.Client{Timeout: 30 * time.Second}
	invoke(t, client, ts.URL+"/v1/functions/"+fc.Module, nil)

	clusterStatus := func() ClusterStatus {
		resp, err := client.Get(ts.URL + "/v1/cluster")
		if err != nil {
			t.Fatal(err)
		}
		var st ClusterStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	home := clusterStatus().Functions[0].Node
	if home == "" {
		t.Fatal("function reports no node")
	}

	resp, err := client.Post(ts.URL+"/v1/cluster/nodes/"+home+"/fail", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var fr NodeFailResponse
	err = json.NewDecoder(resp.Body).Decode(&fr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail returned %d", resp.StatusCode)
	}
	if len(fr.Rehomed) != 1 || fr.Rehomed[0] != fc.Module {
		t.Fatalf("rehomed = %v, want [%s]", fr.Rehomed, fc.Module)
	}

	st := clusterStatus()
	for _, n := range st.Nodes {
		if n.Name == home && n.Alive {
			t.Fatalf("node %s still reported alive after fail", home)
		}
	}
	f := st.Functions[0]
	if f.Node == home || f.Node == "" {
		t.Fatalf("function still homed on %q after node death", f.Node)
	}
	if f.ChargedBytes+f.SharedBytes < f.PoolMemoryBytes {
		t.Fatalf("re-homed charge %d+%d does not cover pool %d",
			f.ChargedBytes, f.SharedBytes, f.PoolMemoryBytes)
	}
	// The function keeps serving across the failure.
	r2, _ := invoke(t, client, ts.URL+"/v1/functions/"+fc.Module, nil)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("invoke after failover: %d", r2.StatusCode)
	}
	// Idempotent on a dead node; 404 on an unknown one.
	r3, err := client.Post(ts.URL+"/v1/cluster/nodes/"+home+"/fail", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("second fail returned %d, want 200", r3.StatusCode)
	}
	r4, err := client.Post(ts.URL+"/v1/cluster/nodes/worker-99/fail", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown node fail returned %d, want 404", r4.StatusCode)
	}
}

package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/k8s"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/obs/slo"
	"wasmcontainers/internal/obs/tsdb"
	"wasmcontainers/internal/serve"
	"wasmcontainers/internal/workloads"
)

// FunctionConfig declares one servable function: a workload module executed
// by one engine profile behind one warm pool and dispatcher.
type FunctionConfig struct {
	// Module is the workload name (see workloads.Names); it is also the
	// path segment of POST /v1/functions/{module}.
	Module string
	// Profile is the engine profile name; empty means wamr.
	Profile string
	// Export is the guest entry point; empty means "handle".
	Export string
	// Arg is the argument passed to Export (sizes the request work).
	Arg int32
	// PoolSize is the warm pool size; 0 means cold-only serving.
	PoolSize int
	// IdleTTL evicts idle warm instances; 0 keeps them forever.
	IdleTTL time.Duration

	// Dispatcher shaping; zero values inherit DispatcherConfig's defaults.
	MaxConcurrency   int
	QueueDepth       int
	QueueDeadline    time.Duration
	MaxRetries       int
	RetryBackoff     time.Duration
	RequestTimeout   time.Duration
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// Config shapes one gateway server.
type Config struct {
	// Functions to register; empty registers DefaultFunction.
	Functions []FunctionConfig
	// LazyTemplate, when non-nil, turns POST /v1/functions/{module} into a
	// resolver for any workload module: the first request for an
	// unregistered module creates its engine, warm pool, node attachment,
	// and dispatcher shard from this template (Module is overwritten per
	// request). nil keeps the fixed-function behaviour: unknown modules 404.
	LazyTemplate *FunctionConfig
	// Bridge is the real-time run layer (dilation, submission buffer).
	Bridge BridgeConfig
	// ClusterNodes sizes the simulated cluster; 0 means 1.
	ClusterNodes int
	// Telemetry receives metrics and spans; nil creates a fresh enabled
	// instance (the live /metrics endpoint needs one to scrape).
	Telemetry *obs.Telemetry
	// AccessLog receives one line per request; nil disables.
	AccessLog io.Writer
	// AccessLogFormat selects "text" (default) or "json": one JSON object per
	// request with ids, status, shard pressure, latencies, and the
	// sampled-trace flag.
	AccessLogFormat string

	// SampleInterval enables the windowed time-series store (tsdb): windows
	// of this simulated length close as the bridge loop advances. 0 disables
	// sampling entirely — /v1/timeseries then serves 404 and the sample path
	// costs nothing.
	SampleInterval time.Duration
	// SampleCapacity bounds retained windows; 0 means tsdb.DefaultCapacity.
	SampleCapacity int
	// SLOObjectives enables the burn-rate engine over the sampled series
	// (requires SampleInterval > 0). nil disables; DefaultSLOObjectives gives
	// the standard availability + p99-latency pair.
	SLOObjectives []slo.Objective
	// SLOBaseWindow scales slo.DefaultRules for objectives that declare no
	// rules; 0 means 1 hour.
	SLOBaseWindow time.Duration
	// TailSampling, when non-nil, keeps full span trees only for interesting
	// requests (error, breaker trip, latency past the threshold) under the
	// configured memory bound.
	TailSampling *obs.TailConfig
}

// DefaultFunction serves the request-handler workload the serving
// experiments use, on the WAMR profile with a small warm pool.
func DefaultFunction() FunctionConfig {
	return FunctionConfig{
		Module:         "request-handler",
		Profile:        "wamr",
		Export:         "handle",
		Arg:            500,
		PoolSize:       4,
		MaxConcurrency: 4,
		QueueDepth:     64,
		QueueDeadline:  time.Second,
	}
}

// DefaultSLOObjectives declares the standard pair over the aggregate
// dispatcher series: availability (bad = failed + rejected + expired against
// submitted, per the conservation identity) at `target`, and latency (invoke
// samples over `latencyThreshold`) at `latencyTarget`.
func DefaultSLOObjectives(target, latencyTarget float64, latencyThreshold time.Duration) []slo.Objective {
	return []slo.Objective{
		{
			Name: "availability", Kind: slo.Availability, Target: target,
			BadSeries: []string{
				"dispatch_failed_total", "dispatch_rejected_total", "dispatch_expired_total",
			},
			TotalSeries: "dispatch_submitted_total",
		},
		{
			Name: "latency", Kind: slo.Latency, Target: latencyTarget,
			LatencySeries: "dispatch_latency_ns", LatencyThreshold: latencyThreshold,
		},
	}
}

// Function is one registered module: engine, pool, dispatcher, and the
// node attachment charging pool memory to the simulated cluster. node and
// att are rewritten when a node failure re-homes the function; both are
// only touched on the bridge loop goroutine (or before Start).
type Function struct {
	cfg  FunctionConfig
	key  string // router shard key: the compiled module's content digest
	eng  *engine.Engine
	pool *serve.Pool
	disp *serve.Dispatcher
	att  *k8s.WarmPoolAttachment
	node *k8s.WorkerNode
}

// Node names the cluster node currently charged for the function's pool.
func (f *Function) Node() string { return f.node.Name }

// syncMem pushes the pool's accounted memory to the current attachment,
// splitting it into node-shared artifacts (code, baseline data image,
// tier-1 code — charged once per node however many pools share them) and
// the per-instance private remainder. Runs on the bridge loop via the
// pool's memory listener.
func (f *Function) syncMem(total int64) {
	att := f.att
	var shared int64
	for _, a := range f.pool.SharedArtifacts() {
		att.SyncShared(a.Name, a.Bytes)
		shared += a.Bytes
	}
	if total < shared {
		total = shared // an artifact published ahead of the pool's charge
	}
	att.Sync(total - shared)
}

// Dispatcher exposes the function's dispatcher (observer-safe accessors
// only, per the DES threading contract).
func (f *Function) Dispatcher() *serve.Dispatcher { return f.disp }

// Pool exposes the function's warm pool.
func (f *Function) Pool() *serve.Pool { return f.pool }

// Module names the function's workload module.
func (f *Function) Module() string { return f.cfg.Module }

// Engine exposes the function's wasm engine. Mutations (fault injection for
// the slo smoke) must run on the bridge loop goroutine via Bridge.Do.
func (f *Function) Engine() *engine.Engine { return f.eng }

// Server is the gateway: it owns the simulated cluster (control plane, its
// own DES engine driven synchronously under a mutex) and the serving bridge
// (data plane, one DES engine driven in real time by the bridge loop).
type Server struct {
	cfg     Config
	tele    *obs.Telemetry
	sim     *des.Engine
	bridge  *Bridge
	cluster *k8s.Cluster
	router  *serve.Router
	mux     *http.ServeMux
	logger  *log.Logger

	// fns is a copy-on-write snapshot map (module name → function): the
	// invoke hot path reads it with one atomic load; lazy registration
	// copies under regMu and publishes a new map.
	fns   atomic.Pointer[map[string]*Function]
	regMu sync.Mutex

	// clusterMu serializes control-surface calls: each one mutates API
	// objects and then drives the cluster's engine to quiescence.
	clusterMu  sync.Mutex
	containers map[string]*k8s.Pod // docker-surface id → pod

	reqSeq   atomic.Int64
	draining atomic.Bool
	started  time.Time

	// db and sloEng are nil when sampling / SLOs are disabled; their methods
	// no-op on nil receivers so the hot path needs no branches.
	db     *tsdb.DB
	sloEng *slo.Engine

	obsHTTPReqs   *obs.Counter
	obsHTTPErrs   *obs.Counter
	obsWallNs     *obs.Histogram
	obsBridgeBusy *obs.Counter
	obsWindows    *obs.Counter
}

// New builds a gateway: simulated cluster, one engine+pool+dispatcher per
// function (pool memory attached to cluster nodes round-robin), telemetry
// wired through every layer with the tracer on the serving DES clock. The
// bridge loop is not yet running — call Start.
func New(cfg Config) (*Server, error) {
	if len(cfg.Functions) == 0 {
		cfg.Functions = []FunctionConfig{DefaultFunction()}
	}
	tele := cfg.Telemetry
	if tele == nil {
		tele = obs.New(obs.Config{})
	}
	clusterCfg := k8s.DefaultClusterConfig()
	if cfg.ClusterNodes > 0 {
		clusterCfg.NumNodes = cfg.ClusterNodes
	}
	cluster, err := k8s.NewCluster(clusterCfg)
	if err != nil {
		return nil, err
	}
	cluster.SetObserver(tele)

	sim := des.NewEngine()
	if tr := tele.Tracer(); tr != nil {
		tr.SetClock(func() int64 { return int64(sim.Now()) })
		tr.SetTailSampling(cfg.TailSampling)
	}
	obs.StampBuildInfo(tele.Metrics())

	// Windowed sampling + SLO engine: the tsdb closes windows as the bridge
	// loop advances virtual time; the SLO engine evaluates inside the same
	// OnWindow hook, so alert transitions land at deterministic sim times.
	var db *tsdb.DB
	var sloEng *slo.Engine
	obsWindows := tele.Counter("tsdb_windows_total")
	if cfg.SampleInterval > 0 {
		var hook func(*tsdb.Window)
		db = tsdb.New(tsdb.Config{
			Interval: cfg.SampleInterval,
			Capacity: cfg.SampleCapacity,
			OnWindow: func(w *tsdb.Window) {
				obsWindows.Inc()
				if hook != nil {
					hook(w)
				}
			},
		})
		trackDefaultSeries(db, tele)
		if len(cfg.SLOObjectives) > 0 {
			sloEng = slo.New(slo.Config{
				DB:         db,
				Objectives: cfg.SLOObjectives,
				BaseWindow: cfg.SLOBaseWindow,
				Telemetry:  tele,
			})
			hook = sloEng.Evaluate
		}
		cfg.Bridge.Sampler = db.Advance
		if cfg.Bridge.SamplerTick <= 0 && cfg.Bridge.Dilation > 0 {
			cfg.Bridge.SamplerTick = time.Duration(float64(cfg.SampleInterval) * cfg.Bridge.Dilation)
		}
	}

	s := &Server{
		cfg:        cfg,
		tele:       tele,
		sim:        sim,
		bridge:     NewBridge(sim, cfg.Bridge),
		cluster:    cluster,
		router:     serve.NewRouter(sim, serve.RouterConfig{}),
		containers: map[string]*k8s.Pod{},
		started:    time.Now(),
		db:         db,
		sloEng:     sloEng,

		obsHTTPReqs:   tele.Counter("gateway_http_requests_total"),
		obsHTTPErrs:   tele.Counter("gateway_http_errors_total"),
		obsWallNs:     tele.Histogram("gateway_wall_latency_ns"),
		obsBridgeBusy: tele.Counter("gateway_bridge_busy_total"),
		obsWindows:    obsWindows,
	}
	s.router.SetObserver(tele)
	empty := map[string]*Function{}
	s.fns.Store(&empty)
	if cfg.AccessLog != nil {
		s.logger = log.New(cfg.AccessLog, "", 0)
	}

	for _, fc := range cfg.Functions {
		if _, dup := (*s.fns.Load())[fc.Module]; dup {
			return nil, fmt.Errorf("gateway: duplicate function module %q", fc.Module)
		}
		if _, err := s.addFunction(context.Background(), fc, false); err != nil {
			return nil, err
		}
	}
	s.routes()
	return s, nil
}

// trackDefaultSeries registers the aggregate serving series with the tsdb.
// Dispatcher metrics are registry-shared across every function's dispatcher
// (same names resolve the same handles), so these windows describe the whole
// gateway — which is also what the default SLO objectives consume.
func trackDefaultSeries(db *tsdb.DB, tele *obs.Telemetry) {
	for _, name := range []string{
		"dispatch_submitted_total", "dispatch_completed_total",
		"dispatch_rejected_total", "dispatch_expired_total",
		"dispatch_failed_total", "dispatch_retries_total",
		"gateway_http_requests_total", "gateway_http_errors_total",
	} {
		db.TrackCounter(name, tele.Counter(name))
	}
	for _, name := range []string{"dispatch_queue_depth", "dispatch_in_flight"} {
		db.TrackGauge(name, tele.Gauge(name))
	}
	for _, name := range []string{"dispatch_latency_ns", "dispatch_queue_wait_ns"} {
		db.TrackHistogram(name, tele.Histogram(name))
	}
}

// addFunction builds one function, registers its dispatcher as a router
// shard keyed by module digest, and publishes it in the snapshot map. The
// node is chosen by artifact locality (see pickNode), not round-robin.
// Serialized under regMu. With live set (lazy creation on a running
// server), the engine/pool/attachment construction runs on the bridge loop
// goroutine via Do, because pool pre-instantiation syncs node memory
// accounting that in-flight requests of co-located pools are mutating on
// that goroutine.
func (s *Server) addFunction(ctx context.Context, fc FunctionConfig, live bool) (*Function, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	old := *s.fns.Load()
	if fn, ok := old[fc.Module]; ok {
		return fn, nil
	}
	var fn *Function
	var err error
	build := func() { fn, err = s.newFunction(fc) }
	if live {
		if doErr := s.bridge.Do(ctx, build); doErr != nil {
			return nil, doErr
		}
	} else {
		build()
	}
	if err != nil {
		return nil, err
	}
	if err := s.router.Register(fn.key, fc.Module, fn.disp); err != nil {
		return nil, err
	}
	next := make(map[string]*Function, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[fc.Module] = fn
	s.fns.Store(&next)
	return fn, nil
}

// pickNode scores live nodes for a module's shared artifacts: a node
// already holding the module's wasm-code:/wasm-data: images beats an empty
// one (the artifact is charged once per node, so stacking is free), free
// memory breaks ties, and node order makes the choice deterministic.
func (s *Server) pickNode(arts []string) (*k8s.WorkerNode, error) {
	var best *k8s.WorkerNode
	bestScore, bestFree := -1, int64(-1)
	for _, n := range s.cluster.Nodes {
		if !n.Alive() {
			continue
		}
		score := 0
		for _, a := range arts {
			if n.OS.HasSharedLib(a) {
				score++
			}
		}
		free := n.OS.Free().AvailableBytes
		if score > bestScore || (score == bestScore && free > bestFree) {
			best, bestScore, bestFree = n, score, free
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gateway: no live node to place on")
	}
	return best, nil
}

// newFunction wires one module end to end: compile, place by artifact
// locality, warm pool, cluster memory attachment, dispatcher.
func (s *Server) newFunction(fc FunctionConfig) (*Function, error) {
	if fc.Profile == "" {
		fc.Profile = "wamr"
	}
	if fc.Export == "" {
		fc.Export = "handle"
	}
	prof, ok := engine.ByName(fc.Profile)
	if !ok {
		return nil, fmt.Errorf("gateway: unknown engine profile %q", fc.Profile)
	}
	bin, err := workloads.Binary(fc.Module)
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	eng := engine.New(prof)
	eng.SetObserver(s.tele)
	cm, err := eng.Compile(bin)
	if err != nil {
		return nil, fmt.Errorf("gateway: compile %s: %w", fc.Module, err)
	}
	node, err := s.pickNode([]string{
		fmt.Sprintf("wasm-code:%x", cm.Digest[:8]),
		fmt.Sprintf("wasm-data:%x", cm.Digest[:8]),
		fmt.Sprintf("wasm-t1:%x", cm.Digest[:8]),
	})
	if err != nil {
		return nil, err
	}
	pool, err := serve.NewPool(eng, cm, serve.Config{Size: fc.PoolSize, IdleTTL: fc.IdleTTL})
	if err != nil {
		return nil, fmt.Errorf("gateway: pool %s: %w", fc.Module, err)
	}
	att, err := node.AttachWarmPool(fmt.Sprintf("%s-%s", fc.Module, fc.Profile))
	if err != nil {
		return nil, err
	}
	att.SetObserver(s.tele)
	disp := serve.NewDispatcher(s.sim, pool, serve.DispatcherConfig{
		MaxConcurrency:   fc.MaxConcurrency,
		QueueDepth:       fc.QueueDepth,
		Policy:           serve.PolicyQueue,
		QueueDeadline:    fc.QueueDeadline,
		Export:           fc.Export,
		Arg:              fc.Arg,
		MaxRetries:       fc.MaxRetries,
		RetryBackoff:     fc.RetryBackoff,
		RequestTimeout:   fc.RequestTimeout,
		BreakerThreshold: fc.BreakerThreshold,
		BreakerCooldown:  fc.BreakerCooldown,
	})
	disp.SetObserver(s.tele)
	fn := &Function{
		cfg:  fc,
		key:  fmt.Sprintf("%x", cm.Digest),
		eng:  eng,
		pool: pool,
		disp: disp,
		att:  att,
		node: node,
	}
	pool.SetMemoryListener(fn.syncMem)
	att.SetDrainer(func() int { return pool.DrainIdle(s.sim.Now()) })
	return fn, nil
}

// Start launches the bridge event loop; the server is ready to serve once
// it returns.
func (s *Server) Start() { s.bridge.Start() }

// Telemetry returns the live telemetry the /metrics endpoint scrapes.
func (s *Server) Telemetry() *obs.Telemetry { return s.tele }

// Function returns a registered function by module name. One atomic
// snapshot load, safe from any goroutine.
func (s *Server) Function(module string) (*Function, bool) {
	f, ok := (*s.fns.Load())[module]
	return f, ok
}

// Functions lists the registered functions sorted by module name.
func (s *Server) Functions() []*Function {
	fns := *s.fns.Load()
	out := make([]*Function, 0, len(fns))
	for _, f := range fns {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].cfg.Module < out[j].cfg.Module })
	return out
}

// Bridge exposes the real-time run layer (for introspection and tests).
func (s *Server) Bridge() *Bridge { return s.bridge }

// Router exposes the sharded dispatch layer (for introspection and tests).
func (s *Server) Router() *serve.Router { return s.router }

// TimeSeries exposes the windowed metrics store (nil when sampling is off).
func (s *Server) TimeSeries() *tsdb.DB { return s.db }

// SLO exposes the burn-rate engine (nil when disabled).
func (s *Server) SLO() *slo.Engine { return s.sloEng }

// Shutdown drains the gateway: the health check flips to draining, every
// dispatcher refuses new work with ErrDraining, the bridge flushes accepted
// submissions to their final results, and the loop stops. In-flight
// requests complete; the admission identity Submitted == Completed +
// Rejected + Expired + Failed balances once Shutdown returns nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.router.SetDraining(true)
	return s.bridge.Drain(ctx)
}

// routes installs the HTTP surface.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/functions/{module}", s.handleInvoke)
	mux.HandleFunc("POST /v1/containers/create", s.handleContainerCreate)
	mux.HandleFunc("POST /v1/containers/{id}/start", s.handleContainerStart)
	mux.HandleFunc("GET /v1/containers/json", s.handleContainerList)
	mux.HandleFunc("GET /v1/containers/{id}/stats", s.handleContainerStats)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("POST /v1/cluster/nodes/{node}/fail", s.handleNodeFail)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/timeseries", s.handleTimeSeries)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	s.mux = mux
}

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// ServeHTTP dispatches with access logging and request-scoped telemetry.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.obsHTTPReqs.Inc()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	wall := time.Since(start)
	s.obsWallNs.Record(int64(wall))
	if sw.status >= 400 {
		s.obsHTTPErrs.Inc()
	}
	if s.logger != nil {
		if s.cfg.AccessLogFormat == "json" {
			s.logger.Print(jsonAccessLine(r, sw, wall))
		} else {
			reqID := sw.Header().Get("X-Request-Id")
			tid := sw.Header().Get("X-Trace-Tid")
			line := fmt.Sprintf("%s %s %d req_id=%s tid=%s wall=%s",
				r.Method, r.URL.Path, sw.status, reqID, tid, wall)
			// Shard pressure as sampled at admission (lock-free accessors).
			if q := sw.Header().Get("X-Queue-Len"); q != "" {
				line += " q=" + q + " in_flight=" + sw.Header().Get("X-In-Flight")
			}
			s.logger.Print(line)
		}
	}
}

// accessRecord is one JSON access-log line. Invoke-only fields stay pointers
// so non-invoke requests (introspection, metrics) log compact objects.
type accessRecord struct {
	Method       string   `json:"method"`
	Path         string   `json:"path"`
	Status       int      `json:"status"`
	WallMs       float64  `json:"wall_ms"`
	RequestID    string   `json:"request_id,omitempty"`
	TraceTID     string   `json:"trace_tid,omitempty"`
	Module       string   `json:"module,omitempty"`
	QueueLen     *int     `json:"queue_len,omitempty"`
	InFlight     *int     `json:"in_flight,omitempty"`
	SimLatencyMs *float64 `json:"sim_latency_ms,omitempty"`
	Cold         *bool    `json:"cold,omitempty"`
	TraceSampled *bool    `json:"trace_sampled,omitempty"`
}

// jsonAccessLine renders one request as a JSON object, reading the
// per-request facts the invoke handler mirrored into response headers.
func jsonAccessLine(r *http.Request, sw *statusWriter, wall time.Duration) string {
	rec := accessRecord{
		Method:    r.Method,
		Path:      r.URL.Path,
		Status:    sw.status,
		WallMs:    float64(wall) / 1e6,
		RequestID: sw.Header().Get("X-Request-Id"),
		TraceTID:  sw.Header().Get("X-Trace-Tid"),
	}
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/functions/"); ok {
		rec.Module = rest
	}
	if q := sw.Header().Get("X-Queue-Len"); q != "" {
		var ql, fl int
		fmt.Sscanf(q, "%d", &ql)
		fmt.Sscanf(sw.Header().Get("X-In-Flight"), "%d", &fl)
		rec.QueueLen, rec.InFlight = &ql, &fl
	}
	if v := sw.Header().Get("X-Sim-Latency-Ms"); v != "" {
		var ms float64
		fmt.Sscanf(v, "%f", &ms)
		rec.SimLatencyMs = &ms
		cold := sw.Header().Get("X-Cold") == "true"
		rec.Cold = &cold
	}
	if v := sw.Header().Get("X-Trace-Sampled"); v != "" {
		sampled := v == "true"
		rec.TraceSampled = &sampled
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Sprintf(`{"method":%q,"path":%q,"status":%d}`, r.Method, r.URL.Path, sw.status)
	}
	return string(b)
}

// InvokeResponse is the success body of POST /v1/functions/{module}.
type InvokeResponse struct {
	Module       string  `json:"module"`
	RequestID    string  `json:"request_id"`
	Cold         bool    `json:"cold"`
	Attempts     int     `json:"attempts"`
	LatencyMs    float64 `json:"latency_ms"`
	QueueWaitMs  float64 `json:"queue_wait_ms"`
	RetryWaitMs  float64 `json:"retry_wait_ms"`
	PayloadBytes int64   `json:"payload_bytes"`
	TraceSampled bool    `json:"trace_sampled"`
}

// maxPayloadBytes bounds an invoke request body.
const maxPayloadBytes = 1 << 20

// handleInvoke is the data path: payload in, routed bridge submission,
// simulated execution, result + timing out. The module resolves through the
// fns snapshot (one atomic load) and then routes by the compiled module's
// digest through the sharded router; with Config.LazyTemplate set, the
// first request for an unregistered workload creates its function on the
// fly. The X-Request-Id header (client-supplied or generated) is threaded
// into the span tracer as the request TID via its numeric companion
// X-Trace-Tid, so a live server's Chrome trace correlates with its access
// log.
func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	module := r.PathValue("module")
	fn, ok := s.Function(module)
	if !ok && s.cfg.LazyTemplate != nil {
		lazy, err := s.lazyFunction(r.Context(), module)
		if err != nil {
			var unknown *workloads.UnknownWorkloadError
			if errors.As(err, &unknown) {
				writeError(w, ErrorMapping{http.StatusNotFound, "unknown_function", 0},
					fmt.Errorf("gateway: unknown function %q", module))
				return
			}
			writeError(w, MapError(err, retryHints{}), err)
			return
		}
		fn, ok = lazy, true
	}
	if !ok {
		writeError(w, ErrorMapping{http.StatusNotFound, "unknown_function", 0},
			fmt.Errorf("gateway: unknown function %q", module))
		return
	}
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPayloadBytes))
	if err != nil {
		writeError(w, ErrorMapping{http.StatusRequestEntityTooLarge, "payload_too_large", 0}, err)
		return
	}
	tid := s.reqSeq.Add(1)
	reqID := r.Header.Get("X-Request-Id")
	if reqID == "" {
		reqID = fmt.Sprintf("req-%08d", tid)
	}
	w.Header().Set("X-Request-Id", reqID)
	w.Header().Set("X-Trace-Tid", fmt.Sprintf("%d", tid))
	// Shard introspection for the access log: lock-free atomic reads, so
	// sampling them per request cannot stall a dispatch burst.
	w.Header().Set("X-Queue-Len", fmt.Sprintf("%d", fn.disp.QueueLen()))
	w.Header().Set("X-In-Flight", fmt.Sprintf("%d", fn.disp.InFlight()))

	res, err := s.bridge.SubmitRouted(r.Context(), s.router, fn.key, tid)
	if err != nil {
		if err == ErrBridgeBusy {
			s.obsBridgeBusy.Inc()
		}
		writeError(w, MapError(err, fn.hints()), err)
		return
	}
	// Sampled-trace flag before the error branch: failed invocations are
	// exactly the ones the tail sampler keeps, and the access log wants the
	// flag either way.
	w.Header().Set("X-Trace-Sampled", fmt.Sprintf("%t", res.TraceSampled))
	if res.Err != nil {
		writeError(w, MapError(res.Err, fn.hints()), res.Err)
		return
	}
	w.Header().Set("X-Cold", fmt.Sprintf("%t", res.Cold))
	w.Header().Set("X-Sim-Latency-Ms", fmt.Sprintf("%.3f", float64(res.Latency)/1e6))
	writeJSON(w, http.StatusOK, InvokeResponse{
		Module:       module,
		RequestID:    reqID,
		Cold:         res.Cold,
		Attempts:     res.Attempts,
		LatencyMs:    float64(res.Latency) / 1e6,
		QueueWaitMs:  float64(res.QueueWait) / 1e6,
		RetryWaitMs:  float64(res.RetryWait) / 1e6,
		PayloadBytes: int64(len(payload)),
		TraceSampled: res.TraceSampled,
	})
}

// lazyFunction resolves module against the lazy template, creating its
// function on first use. Unknown workload names surface as
// *workloads.UnknownWorkloadError so the caller can 404 them.
func (s *Server) lazyFunction(ctx context.Context, module string) (*Function, error) {
	if s.draining.Load() {
		return nil, ErrBridgeDraining
	}
	// Validate the workload before building anything: unknown names are the
	// common case (a typo in the URL) and must stay a cheap 404.
	if _, err := workloads.Binary(module); err != nil {
		return nil, err
	}
	fc := *s.cfg.LazyTemplate
	fc.Module = module
	return s.addFunction(ctx, fc, true)
}

// hints derives Retry-After advice from the function's dispatcher shape.
func (f *Function) hints() retryHints {
	return retryHints{
		breakerCooldown: f.cfg.BreakerCooldown,
		queueDeadline:   f.cfg.QueueDeadline,
	}
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while the flush completes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.draining.Load() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":      state,
		"uptime_ms":   time.Since(s.started).Milliseconds(),
		"sim_time_ms": float64(s.bridge.SimNow()) / 1e6,
		"in_flight":   s.bridge.InFlight(),
	})
}

// handleMetrics serves the live Prometheus exposition: the same registry
// the offline harness snapshots at end of run, scraped mid-flight.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, s.tele.Snapshot())
}

// handleTrace serves the span ring as Chrome trace-event JSON, loadable in
// Perfetto while the server runs.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, s.tele.Tracer().Spans())
}

// TimeSeriesResponse is the body of GET /v1/timeseries.
type TimeSeriesResponse struct {
	IntervalNs int64          `json:"interval_ns"`
	Stats      tsdb.Stats     `json:"stats"`
	Windows    []*tsdb.Window `json:"windows"`
}

// handleTimeSeries serves the retained windows. The read is lock-free
// (atomically published immutable windows), so scraping it cannot stall the
// bridge loop; at dilation 0 the same request script always yields
// byte-identical bodies.
func (s *Server) handleTimeSeries(w http.ResponseWriter, r *http.Request) {
	if s.db == nil {
		writeError(w, ErrorMapping{http.StatusNotFound, "timeseries_disabled", 0},
			errors.New("gateway: time-series sampling disabled (set SampleInterval)"))
		return
	}
	writeJSON(w, http.StatusOK, TimeSeriesResponse{
		IntervalNs: s.db.Interval(),
		Stats:      s.db.Stats(),
		Windows:    s.db.Windows(0),
	})
}

// handleSLO serves the burn-rate engine state: objectives, budgets, and
// alert states with their long/short window burns.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.sloEng == nil {
		writeError(w, ErrorMapping{http.StatusNotFound, "slo_disabled", 0},
			errors.New("gateway: SLO engine disabled (set SampleInterval and SLOObjectives)"))
		return
	}
	writeJSON(w, http.StatusOK, s.sloEng.Status())
}

// sharedArtifactBytes sums the pool's node-shared artifact sizes (charged
// to the node once per artifact name, outside the attachment's private
// charge).
func sharedArtifactBytes(p *serve.Pool) int64 {
	var total int64
	for _, a := range p.SharedArtifacts() {
		total += a.Bytes
	}
	return total
}

// NodeStatus is one node of GET /v1/cluster.
type NodeStatus struct {
	Name            string `json:"name"`
	Alive           bool   `json:"alive"`
	Pods            int    `json:"pods"`
	MemUsedBytes    int64  `json:"mem_used_bytes"`
	MemTotalBytes   int64  `json:"mem_total_bytes"`
	BeyondIdleBytes int64  `json:"beyond_idle_bytes"`
}

// FunctionStatus is one function of GET /v1/cluster.
type FunctionStatus struct {
	Module          string                `json:"module"`
	Profile         string                `json:"profile"`
	Node            string                `json:"node"`
	PoolSize        int                   `json:"pool_size"`
	PoolIdle        int                   `json:"pool_idle"`
	PoolLeased      int                   `json:"pool_leased"`
	PoolMemoryBytes int64                 `json:"pool_memory_bytes"`
	ChargedBytes    int64                 `json:"charged_bytes"`
	SharedBytes     int64                 `json:"shared_bytes"`
	QueueLen        int                   `json:"queue_len"`
	InFlight        int                   `json:"in_flight"`
	Breaker         string                `json:"breaker"`
	Draining        bool                  `json:"draining"`
	Stats           serve.DispatcherStats `json:"stats"`
}

// RouterStatus summarizes the sharded dispatch layer in GET /v1/cluster.
type RouterStatus struct {
	Mode            string `json:"mode"`
	Shards          int    `json:"shards"`
	Batches         int64  `json:"batches"`
	BatchedRequests int64  `json:"batched_requests"`
	MaxBatch        int64  `json:"max_batch"`
}

// ClusterStatus is the body of GET /v1/cluster.
type ClusterStatus struct {
	SimTimeMs  float64          `json:"sim_time_ms"`
	Dilation   float64          `json:"dilation"`
	Nodes      []NodeStatus     `json:"nodes"`
	Functions  []FunctionStatus `json:"functions"`
	Router     RouterStatus     `json:"router"`
	Containers int              `json:"containers"`
	// SLO carries live burn-rate state when the SLO engine is enabled.
	SLO *slo.Status `json:"slo,omitempty"`
}

// handleCluster is the introspection surface: node memory from the
// simulated OS, pool/dispatcher state from the serving layer. Pools,
// dispatchers, and node memory accounting all live on the bridge loop's side
// of the threading contract, so the whole read runs there via Bridge.Do.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	st := ClusterStatus{
		SimTimeMs: float64(s.bridge.SimNow()) / 1e6,
		Dilation:  s.cfg.Bridge.Dilation,
	}
	err := s.bridge.Do(r.Context(), func() {
		s.clusterMu.Lock()
		defer s.clusterMu.Unlock()
		podsByNode := map[string]int{}
		for _, p := range s.cluster.API.Pods() {
			podsByNode[p.Spec.NodeName]++
		}
		st.Containers = len(s.containers)
		for _, n := range s.cluster.Nodes {
			free := n.OS.Free()
			st.Nodes = append(st.Nodes, NodeStatus{
				Name:            n.Name,
				Alive:           n.Alive(),
				Pods:            podsByNode[n.Name],
				MemUsedBytes:    free.UsedBytes,
				MemTotalBytes:   free.TotalBytes,
				BeyondIdleBytes: n.OS.UsedBeyondIdle(),
			})
		}
		rs := s.router.Stats()
		st.Router = RouterStatus{
			Mode:            rs.Mode.String(),
			Shards:          len(rs.Shards),
			Batches:         rs.Batches,
			BatchedRequests: rs.BatchedRequests,
			MaxBatch:        rs.MaxBatch,
		}
		for _, fn := range *s.fns.Load() {
			st.Functions = append(st.Functions, FunctionStatus{
				Module:          fn.cfg.Module,
				Profile:         fn.cfg.Profile,
				Node:            fn.node.Name,
				PoolSize:        fn.cfg.PoolSize,
				PoolIdle:        fn.pool.Idle(),
				PoolLeased:      fn.pool.Leased(),
				PoolMemoryBytes: fn.pool.MemoryBytes(),
				ChargedBytes:    fn.att.ChargedBytes(),
				SharedBytes:     sharedArtifactBytes(fn.pool),
				QueueLen:        fn.disp.QueueLen(),
				InFlight:        fn.disp.InFlight(),
				Breaker:         fn.disp.BreakerState().String(),
				Draining:        fn.disp.Draining(),
				Stats:           fn.disp.Stats(),
			})
		}
	})
	if err != nil {
		writeError(w, MapError(err, retryHints{}), err)
		return
	}
	sort.Slice(st.Functions, func(i, j int) bool { return st.Functions[i].Module < st.Functions[j].Module })
	if s.sloEng != nil {
		sloStatus := s.sloEng.Status()
		st.SLO = &sloStatus
	}
	writeJSON(w, http.StatusOK, st)
}

// NodeFailResponse is the body of POST /v1/cluster/nodes/{node}/fail.
type NodeFailResponse struct {
	Node string `json:"node"`
	// Rehomed lists the functions whose memory charge moved to a surviving
	// node, in module order.
	Rehomed []string `json:"rehomed"`
}

// handleNodeFail kills one node fail-stop: the control plane marks it dead
// and fails its pods, and every function charged to that node is re-homed —
// a fresh warm-pool attachment on a surviving node picked by artifact
// locality, the dead node's charge detached. The serving state (pool,
// dispatcher, router shard) is untouched, so in-flight and subsequent
// invokes keep completing across the failure; only the placement moves.
// Idempotent: failing a dead node re-homes nothing and returns 200.
func (s *Server) handleNodeFail(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("node")
	resp := NodeFailResponse{Node: name}
	var failErr error
	err := s.bridge.Do(r.Context(), func() {
		s.clusterMu.Lock()
		defer s.clusterMu.Unlock()
		if failErr = s.cluster.FailNode(name); failErr != nil {
			return
		}
		s.cluster.Run()
		// Deterministic re-home order: module-name sorted.
		fns := *s.fns.Load()
		modules := make([]string, 0, len(fns))
		for m, fn := range fns {
			if fn.node.Name == name {
				modules = append(modules, m)
			}
		}
		sort.Strings(modules)
		for _, m := range modules {
			fn := fns[m]
			arts := make([]string, 0, 3)
			for _, a := range fn.pool.SharedArtifacts() {
				arts = append(arts, a.Name)
			}
			target, err := s.pickNode(arts)
			if err != nil {
				failErr = fmt.Errorf("gateway: re-home %s: %w", m, err)
				return
			}
			att, err := target.AttachWarmPool(fmt.Sprintf("%s-%s", fn.cfg.Module, fn.cfg.Profile))
			if err != nil {
				failErr = fmt.Errorf("gateway: re-home %s: %w", m, err)
				return
			}
			att.SetObserver(s.tele)
			old := fn.att
			fn.att, fn.node = att, target
			att.SetDrainer(func() int { return fn.pool.DrainIdle(s.sim.Now()) })
			fn.syncMem(fn.pool.MemoryBytes())
			old.SetDrainer(nil)
			old.Detach()
			resp.Rehomed = append(resp.Rehomed, m)
		}
	})
	if err != nil {
		writeError(w, MapError(err, retryHints{}), err)
		return
	}
	if failErr != nil {
		writeError(w, ErrorMapping{http.StatusNotFound, "unknown_node", 0}, failErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"wasmcontainers/internal/serve"
)

// APIError is the gateway's wire-level error body:
//
//	{"error": {"code": "queue_full", "message": "...", "retry_after_ms": 250}}
//
// code is a stable machine-readable identifier; retry_after_ms is present
// only when backing off is the right client response, and mirrors the
// Retry-After header (which HTTP expresses in whole seconds, rounded up).
type APIError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// errorEnvelope wraps APIError under the "error" key.
type errorEnvelope struct {
	Error APIError `json:"error"`
}

// ErrorMapping is one dispatcher/bridge error translated to the wire.
type ErrorMapping struct {
	Status     int
	Code       string
	RetryAfter time.Duration // 0 = no Retry-After
}

// retryHints tune the Retry-After advice per refusal cause; the dispatcher
// config supplies the two that have a principled value (breaker cooldown,
// queue deadline).
type retryHints struct {
	breakerCooldown time.Duration
	queueDeadline   time.Duration
}

// defaultBusyRetry is the Retry-After advice for transient saturation
// (bridge channel full, concurrency limit) where no configured duration
// applies: long enough to shed load, short enough to keep clients live.
const defaultBusyRetry = 100 * time.Millisecond

// MapError classifies err into the gateway's HTTP vocabulary. Distinct
// admission outcomes get distinct statuses so load generators can tell
// backpressure (429, retryable at the client's leisure) from unavailability
// (503, retry after the hinted cooldown) from deadline loss (504):
//
//	queue full / concurrency limit → 429 Too Many Requests
//	breaker open / draining / bridge busy → 503 Service Unavailable
//	queue expired / request timeout → 504 Gateway Timeout
//	guest invoke failure → 500 Internal Server Error
func MapError(err error, hints retryHints) ErrorMapping {
	cooldown := hints.breakerCooldown
	if cooldown <= 0 {
		cooldown = 100 * time.Millisecond // DispatcherConfig's documented default
	}
	queueRetry := hints.queueDeadline
	if queueRetry <= 0 {
		queueRetry = defaultBusyRetry
	}
	switch {
	case errors.Is(err, serve.ErrUnknownModule):
		return ErrorMapping{http.StatusNotFound, "unknown_function", 0}
	case errors.Is(err, serve.ErrQueueFull):
		return ErrorMapping{http.StatusTooManyRequests, "queue_full", queueRetry}
	case errors.Is(err, serve.ErrConcurrencyLimit):
		return ErrorMapping{http.StatusTooManyRequests, "concurrency_limit", defaultBusyRetry}
	case errors.Is(err, serve.ErrBreakerOpen):
		return ErrorMapping{http.StatusServiceUnavailable, "breaker_open", cooldown}
	case errors.Is(err, serve.ErrQueueExpired):
		return ErrorMapping{http.StatusGatewayTimeout, "queue_expired", 0}
	case errors.Is(err, serve.ErrRequestTimeout):
		return ErrorMapping{http.StatusGatewayTimeout, "request_timeout", 0}
	case errors.Is(err, serve.ErrDraining), errors.Is(err, ErrBridgeDraining):
		return ErrorMapping{http.StatusServiceUnavailable, "draining", 0}
	case errors.Is(err, ErrBridgeBusy):
		return ErrorMapping{http.StatusServiceUnavailable, "bridge_busy", defaultBusyRetry}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The client went away mid-wait; the status is written into the void
		// but keeps the access log honest.
		return ErrorMapping{StatusClientClosedRequest, "client_closed_request", 0}
	default:
		return ErrorMapping{http.StatusInternalServerError, "invoke_failed", 0}
	}
}

// StatusClientClosedRequest is nginx's conventional status for a client that
// disconnected before the response was ready; net/http has no name for it.
const StatusClientClosedRequest = 499

// writeError emits the JSON error envelope plus the Retry-After header.
func writeError(w http.ResponseWriter, m ErrorMapping, err error) {
	w.Header().Set("Content-Type", "application/json")
	if m.RetryAfter > 0 {
		secs := int64((m.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(m.Status)
	msg := m.Code
	if err != nil {
		msg = err.Error()
	}
	enc := json.NewEncoder(w)
	_ = enc.Encode(errorEnvelope{Error: APIError{
		Code:         m.Code,
		Message:      msg,
		RetryAfterMs: int64(m.RetryAfter / time.Millisecond),
	}})
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

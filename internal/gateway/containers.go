package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"

	"wasmcontainers/internal/k8s"
)

// The container endpoints are a minimal Docker-Engine-API-shaped control
// surface over the simulated cluster, the way sockerless serves the Docker
// REST API without Docker: create registers a pod with the API server
// (phase Pending — created, not started), start drives the cluster's DES
// engine to quiescence so the pod reaches Running through the full
// scheduler → kubelet → CRI → runtime path, json lists, stats reads the
// pod's cgroup through the metrics-server. The cluster's control-plane
// engine is separate from the serving bridge's: control calls simulate to
// completion synchronously, while the data plane runs on the bridge loop in
// (dilated) real time. The two planes share node memory accounting (warm
// pools charge the same simulated kubelets containers run on), so every
// cluster-touching section executes on the bridge loop via Bridge.Do, with
// clusterMu guarding the gateway's own container table.

// ContainerCreateRequest is the accepted subset of Docker's create body.
type ContainerCreateRequest struct {
	// Image names the container image; empty means the Wasm benchmark image.
	Image string `json:"Image"`
	// Runtime selects the RuntimeClass (crun-wamr, wasmtime, crun, ...);
	// empty means crun-wamr, the paper's architecture.
	Runtime string `json:"Runtime"`
	// Cmd is passed to the workload as args.
	Cmd []string `json:"Cmd"`
	// Env is passed through to the container spec.
	Env []string `json:"Env"`
}

// ContainerCreateResponse mirrors Docker's create response.
type ContainerCreateResponse struct {
	ID       string   `json:"Id"`
	Warnings []string `json:"Warnings"`
}

// ContainerSummary is one row of GET /v1/containers/json.
type ContainerSummary struct {
	ID      string            `json:"Id"`
	Names   []string          `json:"Names"`
	Image   string            `json:"Image"`
	State   string            `json:"State"`
	Status  string            `json:"Status"`
	Created float64           `json:"Created"` // simulated seconds
	Labels  map[string]string `json:"Labels"`
}

// ContainerStats is the one-shot (stream=false) stats body.
type ContainerStats struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	MemoryStats struct {
		Usage int64 `json:"usage"`
	} `json:"memory_stats"`
	Node string `json:"node"`
}

// DefaultContainerImage backs creates that name no image: the minimal Wasm
// service from the pre-populated benchmark image store.
const DefaultContainerImage = "minimal-service:wasm"

// dockerState maps a pod phase to Docker's state vocabulary.
func dockerState(phase k8s.PodPhase) string {
	switch phase {
	case k8s.PodRunning:
		return "running"
	case k8s.PodFailed:
		return "exited"
	default:
		return "created"
	}
}

// handleContainerCreate registers a pod (phase Pending) and returns its id.
// Like docker create, nothing executes until start.
func (s *Server) handleContainerCreate(w http.ResponseWriter, r *http.Request) {
	var req ContainerCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, ErrorMapping{http.StatusBadRequest, "bad_request", 0},
			fmt.Errorf("gateway: decode create body: %w", err))
		return
	}
	if req.Image == "" {
		req.Image = DefaultContainerImage
	}
	if req.Runtime == "" {
		req.Runtime = "crun-wamr"
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "ctr"
	}
	var (
		pod       *k8s.Pod
		deployErr error
	)
	if err := s.bridge.Do(r.Context(), func() {
		s.clusterMu.Lock()
		defer s.clusterMu.Unlock()
		var pods []*k8s.Pod
		pods, deployErr = s.cluster.Deploy(k8s.DeployOptions{
			NamePrefix:       name,
			RuntimeClassName: req.Runtime,
			Image:            req.Image,
			Replicas:         1,
			Args:             req.Cmd,
			Env:              req.Env,
		})
		if deployErr != nil {
			return
		}
		pod = pods[0]
		s.containers[pod.UID] = pod
	}); err != nil {
		writeError(w, MapError(err, retryHints{}), err)
		return
	}
	if deployErr != nil {
		writeError(w, ErrorMapping{http.StatusBadRequest, "create_failed", 0}, deployErr)
		return
	}
	writeJSON(w, http.StatusCreated, ContainerCreateResponse{ID: pod.UID, Warnings: nil})
}

// handleContainerStart runs the control-plane simulation to quiescence,
// driving the pod through scheduling and the CRI start sequence. 204 on a
// Running pod, 500 with the kubelet's message otherwise.
func (s *Server) handleContainerStart(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		ok    bool
		phase k8s.PodPhase
		msg   string
	)
	if err := s.bridge.Do(r.Context(), func() {
		s.clusterMu.Lock()
		defer s.clusterMu.Unlock()
		var pod *k8s.Pod
		pod, ok = s.containers[id]
		if !ok {
			return
		}
		s.cluster.Run()
		phase = pod.Status.Phase
		msg = pod.Status.Message
	}); err != nil {
		writeError(w, MapError(err, retryHints{}), err)
		return
	}
	if !ok {
		writeError(w, ErrorMapping{http.StatusNotFound, "no_such_container", 0},
			fmt.Errorf("gateway: no such container %q", id))
		return
	}
	if phase != k8s.PodRunning {
		writeError(w, ErrorMapping{http.StatusInternalServerError, "start_failed", 0},
			fmt.Errorf("gateway: container %s is %s: %s", id, phase, msg))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleContainerList lists containers; like docker ps it shows running
// ones unless ?all=1.
func (s *Server) handleContainerList(w http.ResponseWriter, r *http.Request) {
	all := r.URL.Query().Get("all") != "" && r.URL.Query().Get("all") != "0" &&
		r.URL.Query().Get("all") != "false"
	var out []ContainerSummary
	if err := s.bridge.Do(r.Context(), func() {
		s.clusterMu.Lock()
		defer s.clusterMu.Unlock()
		out = make([]ContainerSummary, 0, len(s.containers))
		for _, pod := range s.containers {
			if !all && pod.Status.Phase != k8s.PodRunning {
				continue
			}
			out = append(out, ContainerSummary{
				ID:      pod.UID,
				Names:   []string{"/" + pod.Name},
				Image:   pod.Spec.Containers[0].Image,
				State:   dockerState(pod.Status.Phase),
				Status:  string(pod.Status.Phase),
				Created: float64(pod.Status.CreatedAt) / 1e9,
				Labels: map[string]string{
					"runtime-class": pod.Spec.RuntimeClassName,
					"node":          pod.Spec.NodeName,
				},
			})
		}
	}); err != nil {
		writeError(w, MapError(err, retryHints{}), err)
		return
	}
	// Map iteration is randomized; present a stable listing.
	sortContainers(out)
	writeJSON(w, http.StatusOK, out)
}

// sortContainers orders by id (uids are zero-padded sequence numbers).
func sortContainers(cs []ContainerSummary) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].ID < cs[j-1].ID; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// handleContainerStats reads the pod's cgroup memory through the
// metrics-server vantage (one-shot, stream=false semantics).
func (s *Server) handleContainerStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		ok    bool
		stats ContainerStats
	)
	if err := s.bridge.Do(r.Context(), func() {
		s.clusterMu.Lock()
		defer s.clusterMu.Unlock()
		var pod *k8s.Pod
		pod, ok = s.containers[id]
		if !ok {
			return
		}
		stats.ID = pod.UID
		stats.Name = "/" + pod.Name
		stats.Node = pod.Spec.NodeName
		if pm, found := s.cluster.Metrics.PodMetrics(pod); found {
			stats.MemoryStats.Usage = pm.MemoryBytes
		}
	}); err != nil {
		writeError(w, MapError(err, retryHints{}), err)
		return
	}
	if !ok {
		writeError(w, ErrorMapping{http.StatusNotFound, "no_such_container", 0},
			fmt.Errorf("gateway: no such container %q", id))
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

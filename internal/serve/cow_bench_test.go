package serve

import (
	"testing"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/wasm/exec"
)

// benchTouchWAT is the reset-cost workload: a 64-page (4 MiB) memory whose
// handler dirties the first n pages — a request touching a small fraction of
// a large memory, the regime where copy-on-write reset wins.
const benchTouchWAT = `
(module
  (memory (export "memory") 64)
  (func (export "touch") (param $n i32)
    (local $i i32)
    block $done
      loop $l
        local.get $i
        local.get $n
        i32.ge_u
        br_if $done
        (i32.store (i32.mul (local.get $i) (i32.const 65536)) (i32.const 1))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        br $l
      end
    end))
`

// touchedPages is under 10% of the 64-page memory; the acceptance bar is a
// >=5x reset speedup in exactly this regime.
const touchedPages = 6

// BenchmarkPoolReleaseFull measures the legacy between-requests reset: a
// full-memory copy from a per-instance snapshot, costing O(memory size) no
// matter how little a request touched.
func BenchmarkPoolReleaseFull(b *testing.B) {
	pool := newWATPool(b, engine.WAMR, benchTouchWAT, Config{Size: 1})
	wi, ok := pool.Acquire(0)
	if !ok {
		b.Fatal("pool dry")
	}
	snapshot := wi.inst.MemorySnapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := wi.Invoke("touch", exec.I32(touchedPages)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		wi.inst.ResetMemory(snapshot)
	}
}

// BenchmarkPoolReleaseDirtyPages measures the copy-on-write reset the pool
// now performs on Release: only the pages the request dirtied are copied
// back from the shared baseline image, costing O(pages touched).
func BenchmarkPoolReleaseDirtyPages(b *testing.B) {
	pool := newWATPool(b, engine.WAMR, benchTouchWAT, Config{Size: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wi, ok := pool.Acquire(0)
		if !ok {
			b.Fatal("pool dry")
		}
		if _, err := wi.Invoke("touch", exec.I32(touchedPages)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		pool.Release(wi, 0)
	}
}

package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/wat"
)

// growHandlerWAT grows linear memory by the request argument (pages) and
// writes into the grown region: a request that privatizes pages beyond the
// baseline, which Release must give back.
const growHandlerWAT = `
(module
  (memory (export "memory") 1 16)
  (func (export "handle") (param $n i32) (result i32)
    (if (i32.lt_s (memory.grow (local.get $n)) (i32.const 0))
      (then (return (i32.const -1))))
    ;; dirty a grown page and a baseline page
    (i32.store (i32.const 65536) (i32.const 7))
    (i32.store (i32.const 0) (i32.const 7))
    (memory.size)))
`

// isolationHandlerWAT stores the request's value at two spots (a low page
// and a high page), spins to widen any race window, then verifies both spots
// still read the request's own value. Address 16 doubles as a stale-state
// detector: it must read 0 on entry, so any missed reset or cross-instance
// bleed is observable.
const isolationHandlerWAT = `
(module
  (memory (export "memory") 4)
  (func (export "handle") (param $v i32) (result i32)
    (local $i i32)
    (if (i32.load (i32.const 16)) (then (return (i32.const -1))))
    (i32.store (i32.const 16) (local.get $v))
    (i32.store (i32.const 131072) (local.get $v))
    block $done
      loop $spin
        local.get $i
        i32.const 2000
        i32.ge_u
        br_if $done
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        br $spin
      end
    end
    (if (i32.ne (i32.load (i32.const 16)) (local.get $v))
      (then (return (i32.const -2))))
    (if (i32.ne (i32.load (i32.const 131072)) (local.get $v))
      (then (return (i32.const -3))))
    (i32.const 1)))
`

func newWATPool(t testing.TB, p engine.Profile, src string, cfg Config) *Pool {
	t.Helper()
	bin, err := wat.CompileToBinary(src)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(p)
	cm, err := eng.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(eng, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestPoolGrowThenReset: an instance that grows memory mid-request must
// shrink back to the baseline page count on Release, with dirty/private
// accounting returning to zero.
func TestPoolGrowThenReset(t *testing.T) {
	pool := newWATPool(t, engine.WAMR, growHandlerWAT, Config{Size: 1})

	idleMem := pool.MemoryBytes()
	wi, ok := pool.Acquire(0)
	if !ok {
		t.Fatal("pool dry")
	}
	res, err := wi.Invoke("handle", exec.I32(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := exec.AsI32(res.Values[0]); got != 5 {
		t.Fatalf("memory.size after grow = %d pages, want 5", got)
	}
	// Mid-request the instance carries private pages: the grown pages plus
	// the dirtied baseline page.
	if priv := wi.inst.PrivateMemoryBytes(); priv != 5*64*1024 {
		t.Fatalf("private bytes mid-request = %d, want 5 pages", priv)
	}

	pool.Release(wi, 0)

	wi2, ok := pool.Acquire(0)
	if !ok {
		t.Fatal("pool dry after release")
	}
	if got := wi2.inst.GuestMemoryBytes(); got != 64*1024 {
		t.Fatalf("guest memory after reset = %d, want baseline 1 page", got)
	}
	if priv := wi2.inst.PrivateMemoryBytes(); priv != 0 {
		t.Fatalf("private bytes after reset = %d, want 0", priv)
	}
	v, err := wi2.inst.Invoke("handle", exec.I32(1))
	if err != nil {
		t.Fatal(err)
	}
	// A second grow starting over from the 1-page baseline lands on 2 pages:
	// the first request's growth really was released.
	if exec.AsI32(v.Values[0]) != 2 {
		t.Fatalf("baseline page count drifted: memory.size = %d", exec.AsI32(v.Values[0]))
	}
	pool.Release(wi2, 0)

	// Pool accounting returned to the idle figure; the high-water mark
	// recorded the privatized pages.
	if got := pool.MemoryBytes(); got != idleMem {
		t.Fatalf("pool memory = %d after grow-then-reset, want %d", got, idleMem)
	}
	if hw := pool.HighWater(); hw < idleMem+5*64*1024 {
		t.Fatalf("high water %d did not record the request's private pages", hw)
	}
	// The only page copied back by the resets is the dirtied baseline page
	// (grown pages are dropped, and request 2 with grow(0) dirtied one page).
	if st := pool.Stats(); st.ResetPages != 2 {
		t.Fatalf("reset pages = %d, want 2", st.ResetPages)
	}
}

// TestPoolConcurrentSharedBaselineIsolation hammers one shared baseline
// image from 8 goroutines under -race: every request writes its own value
// into pages of an instance aliasing the same BaselineImage as 7 other
// goroutines' instances, and verifies no instance ever observes another's
// dirty pages (and no dirty page survives a release).
func TestPoolConcurrentSharedBaselineIsolation(t *testing.T) {
	const (
		goroutines = 8
		iterations = 40
	)
	pool := newWATPool(t, engine.WAMR, isolationHandlerWAT, Config{Size: 4})
	var wg sync.WaitGroup
	var bad atomic.Int64
	var errs atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				wi, ok := pool.Acquire(0)
				if !ok {
					var err error
					wi, err = pool.ColdStart()
					if err != nil {
						errs.Add(1)
						return
					}
				}
				// Unique nonzero value per (goroutine, iteration).
				v := int32(1 + g*iterations + i)
				res, err := wi.Invoke("handle", exec.I32(v))
				if err != nil {
					errs.Add(1)
				} else if exec.AsI32(res.Values[0]) != 1 {
					bad.Add(1)
				}
				pool.Release(wi, 0)
			}
		}(g)
	}
	wg.Wait()
	if n := errs.Load(); n != 0 {
		t.Fatalf("%d invocations failed", n)
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d requests observed foreign or stale dirty pages", n)
	}
	if pool.SharedBaselineBytes() != 4*64*1024 {
		t.Fatalf("shared baseline = %d, want 4 pages", pool.SharedBaselineBytes())
	}
	// Every release copied back exactly the two dirtied pages.
	if st := pool.Stats(); st.ResetPages != 2*goroutines*iterations {
		t.Fatalf("reset pages = %d, want %d", st.ResetPages, 2*goroutines*iterations)
	}
}

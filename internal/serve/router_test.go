package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/workloads"
)

// newTestRouter builds a router with n handler-variant shards (one
// dispatcher + single-instance warm pool each) on a fresh DES engine.
func newTestRouter(t *testing.T, mode RouterMode, n int, dcfg DispatcherConfig) (*des.Engine, *Router, []string) {
	t.Helper()
	sim := des.NewEngine()
	rt := NewRouter(sim, RouterConfig{Mode: mode})
	eng := engine.New(engine.WAMR)
	seen := map[[32]byte]string{}
	modules := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s%d", workloads.HandlerVariantPrefix, i)
		bin, err := workloads.Binary(name)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := eng.Compile(bin)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[cm.Digest]; dup {
			t.Fatalf("variant %s shares a digest with %s — shards would collide", name, prev)
		}
		seen[cm.Digest] = name
		pool, err := NewPool(eng, cm, Config{Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		d := NewDispatcher(sim, pool, dcfg)
		if err := rt.Register(name, name, d); err != nil {
			t.Fatal(err)
		}
		modules = append(modules, name)
	}
	return sim, rt, modules
}

// routerDCfg is the dispatcher shape the router tests share: queued
// admission with headroom so outcomes depend on ordering, not luck.
func routerDCfg() DispatcherConfig {
	return DispatcherConfig{
		MaxConcurrency: 2,
		QueueDepth:     1 << 12,
		Policy:         PolicyQueue,
		Export:         "handle",
		Arg:            4,
	}
}

// TestRouterBatchEquivalence: the same arrival script produces identical
// per-shard outcome counters whether it runs through sharded batched
// admission or the single-queue per-request baseline — batching changes the
// constant factor, not the semantics.
func TestRouterBatchEquivalence(t *testing.T) {
	script := func(mode RouterMode) RouterStats {
		sim, rt, modules := newTestRouter(t, mode, 4, routerDCfg())
		// 300 submissions in bursts of 3 at 1ms spacing: every burst lands
		// within one DES instant on one module, so sharded mode coalesces
		// each burst into one per-shard batch.
		for i := 0; i < 100; i++ {
			at := des.Time(i) * des.Time(time.Millisecond)
			for j := 0; j < 3; j++ {
				m := modules[i%len(modules)]
				sim.At(at, func() {
					if err := rt.Submit(m, 0, nil); err != nil {
						t.Errorf("submit %s: %v", m, err)
					}
				})
			}
		}
		sim.Run()
		return rt.Stats()
	}
	sharded := script(RouterSharded)
	baseline := script(RouterSingleQueue)
	if sharded.Batches == 0 || sharded.MaxBatch < 2 {
		t.Fatalf("sharded run did not coalesce: batches=%d maxBatch=%d",
			sharded.Batches, sharded.MaxBatch)
	}
	if len(sharded.Shards) != len(baseline.Shards) {
		t.Fatalf("shard count mismatch: %d vs %d", len(sharded.Shards), len(baseline.Shards))
	}
	for i := range sharded.Shards {
		got, want := sharded.Shards[i], baseline.Shards[i]
		if got.Module != want.Module || got.Stats != want.Stats {
			t.Errorf("shard %s: sharded %+v != single-queue %+v (module %s)",
				got.Module, got.Stats, want.Stats, want.Module)
		}
	}
	if !sharded.IdentityHolds() || !baseline.IdentityHolds() {
		t.Fatalf("identity violated: sharded=%+v baseline=%+v",
			sharded.Aggregate, baseline.Aggregate)
	}
}

// TestRouterConcurrentRaceFree is the 8-goroutine contract test: producers
// funnel submissions for random shards through a channel to the one DES
// goroutine while hammering Stats scrapes, then the run drains and the
// conservation identity must hold per shard and in aggregate. Run under
// -race (the Makefile race target includes this package).
func TestRouterConcurrentRaceFree(t *testing.T) {
	const (
		producers = 8
		perProd   = 200
		nShards   = 8
	)
	sim, rt, modules := newTestRouter(t, RouterSharded, nShards, routerDCfg())
	keyCh := make(chan string, 256)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				keyCh <- modules[(p*perProd+i*7)%len(modules)]
				// The mid-flight scrapes the satellite fix exists for: every
				// accessor here is a lock-free atomic read.
				st := rt.Stats()
				if len(st.Shards) != nShards {
					t.Errorf("scrape saw %d shards, want %d", len(st.Shards), nShards)
					return
				}
				for _, sh := range st.Shards {
					_ = sh.QueueLen + sh.InFlight + int(sh.Breaker)
				}
			}
		}(p)
	}
	go func() { wg.Wait(); close(keyCh) }()

	// The consumer is the DES goroutine: it alternates draining waiting keys
	// (injected at the same virtual instant, so they coalesce) with running
	// the engine dry.
	for key := range keyCh {
		if err := rt.Submit(key, 0, nil); err != nil {
			t.Fatal(err)
		}
	drain:
		for i := 0; i < 64; i++ {
			select {
			case k, ok := <-keyCh:
				if !ok {
					break drain
				}
				if err := rt.Submit(k, 0, nil); err != nil {
					t.Fatal(err)
				}
			default:
				break drain
			}
		}
		sim.Run()
	}
	rt.SetDraining(true)
	sim.Run()
	if !rt.Quiesced() {
		t.Fatal("router not quiesced after drain")
	}
	st := rt.Stats()
	if got, want := st.Aggregate.Submitted, int64(producers*perProd); got != want {
		t.Fatalf("aggregate submitted = %d, want %d", got, want)
	}
	for _, sh := range st.Shards {
		if !sh.IdentityHolds() {
			t.Errorf("shard %s identity violated: %+v", sh.Module, sh.Stats)
		}
	}
	if !st.IdentityHolds() {
		t.Fatalf("aggregate identity violated: %+v", st.Aggregate)
	}
	if st.Batches == 0 {
		t.Fatal("no batches recorded")
	}
	if st.BatchedRequests != st.Aggregate.Submitted {
		t.Fatalf("batched %d != submitted %d", st.BatchedRequests, st.Aggregate.Submitted)
	}
}

// TestRouterDeterministicStats: two dilation-0 multi-module runs with the
// same seed produce byte-identical per-shard stats.
func TestRouterDeterministicStats(t *testing.T) {
	run := func() string {
		sim, rt, modules := newTestRouter(t, RouterSharded, 16, routerDCfg())
		rep, err := RunMulti(sim, rt, MultiConfig{
			RatePerSec: 4000,
			Duration:   200 * time.Millisecond,
			Seed:       42,
			Modules:    modules,
			ZipfS:      1.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := rt.Stats()
		if !st.IdentityHolds() {
			t.Fatalf("identity violated: %+v", st.Aggregate)
		}
		out := fmt.Sprintf("offered=%d p50=%.9f p99=%.9f\n", rep.Offered, rep.Latency.P50, rep.Latency.P99)
		for _, sh := range st.Shards {
			out += fmt.Sprintf("%s %+v q=%d f=%d\n", sh.Module, sh.Stats, sh.QueueLen, sh.InFlight)
		}
		for _, m := range rep.Modules {
			out += fmt.Sprintf("mod %s offered=%d completed=%d p99=%.9f\n", m.Module, m.Offered, m.Completed, m.Latency.P99)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two seeded dilation-0 runs diverged:\n--- run A\n%s--- run B\n%s", a, b)
	}
}

// TestRouterZipfSkew: with s=1.1 the hottest module must actually dominate —
// the shard ablation depends on real imbalance being exercised.
func TestRouterZipfSkew(t *testing.T) {
	sim, rt, modules := newTestRouter(t, RouterSharded, 16, routerDCfg())
	rep, err := RunMulti(sim, rt, MultiConfig{
		RatePerSec: 4000,
		Duration:   250 * time.Millisecond,
		Seed:       7,
		Modules:    modules,
		ZipfS:      1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Modules) < 2 {
		t.Fatalf("expected a multi-module breakdown, got %d entries", len(rep.Modules))
	}
	hottest := rep.Modules[0]
	if hottest.Module != modules[0] {
		t.Errorf("hottest module = %s, want rank-1 %s", hottest.Module, modules[0])
	}
	share := float64(hottest.Offered) / float64(rep.Offered)
	if share < 0.15 {
		t.Errorf("hottest share = %.3f, want >= 0.15 under zipf s=1.1", share)
	}
	if rep.Dispatcher.Submitted != rep.Offered {
		t.Errorf("aggregate submitted %d != offered %d", rep.Dispatcher.Submitted, rep.Offered)
	}
}

// TestRouterUnknownModule: an unregistered key is refused synchronously.
func TestRouterUnknownModule(t *testing.T) {
	sim, rt, _ := newTestRouter(t, RouterSharded, 1, routerDCfg())
	ran := false
	sim.At(0, func() {
		if err := rt.Submit("no-such-module", 0, func(RequestResult) { ran = true }); !errors.Is(err, ErrUnknownModule) {
			t.Errorf("err = %v, want ErrUnknownModule", err)
		}
	})
	sim.Run()
	if ran {
		t.Fatal("done callback ran for a refused submission")
	}
	if got := rt.Stats().Aggregate.Submitted; got != 0 {
		t.Fatalf("submitted = %d, want 0", got)
	}
}

package serve

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/obs"
)

// ErrUnknownModule refuses a submission whose key matches no registered
// shard. Detect it with errors.Is.
var ErrUnknownModule = errors.New("serve: unknown module")

// RouterMode selects the router's dispatch architecture.
type RouterMode int

const (
	// RouterSharded is the production mode: per-module dispatchers behind a
	// lock-free snapshot-map lookup, with submissions arriving within one
	// DES event coalesced into per-shard batches (Dispatcher.SubmitBatch).
	RouterSharded RouterMode = iota
	// RouterSingleQueue is the pre-sharding baseline the shard ablation
	// measures against: one global mutex serializes every submission and
	// every Stats scrape, and each request pays full per-request admission —
	// the "one mutex-guarded FIFO plus mutex introspection" architecture
	// this router replaces.
	RouterSingleQueue
)

// String names the mode for experiment tables.
func (m RouterMode) String() string {
	if m == RouterSingleQueue {
		return "single-queue"
	}
	return "sharded"
}

// RouterConfig shapes one router.
type RouterConfig struct {
	// Mode selects sharded (default) or the single-queue baseline.
	Mode RouterMode
}

// shard is one registered module: its dispatcher plus the pending batch
// being coalesced for the current DES event. pending and armed are touched
// only on the DES goroutine; the obs handles are written at registration.
type shard struct {
	key    string
	module string
	d      *Dispatcher

	pending []BatchItem
	armed   bool

	obsSubmitted *obs.Counter
	obsCompleted *obs.Counter
	obsRejected  *obs.Counter
	obsExpired   *obs.Counter
	obsFailed    *obs.Counter
}

// classify lands one request outcome on the shard's per-module counters.
// Registered only when telemetry is enabled, so the disabled path never
// pays the wrapper closure.
func (sh *shard) classify(r RequestResult) {
	switch {
	case !r.Admitted && errors.Is(r.Err, ErrQueueExpired):
		sh.obsExpired.Inc()
	case !r.Admitted:
		sh.obsRejected.Inc()
	case r.Err != nil:
		sh.obsFailed.Inc()
	default:
		sh.obsCompleted.Inc()
	}
}

// Router is the sharded multi-function dispatch layer: it owns one
// dispatcher per registered module (each keeping the dispatcher's full
// queue/retry/breaker semantics, independently per shard), routes
// submissions by key through a lock-free snapshot-map lookup, and coalesces
// submissions arriving within one DES event into per-shard batches so queue
// push, deadline-expiry sweep, slot pre-claim, and obs recording run once
// per batch instead of once per request.
//
// Threading follows the dispatcher's contract: Submit and SubmitBatch run
// on the one goroutine driving the DES engine. Registration and the Stats/
// Quiesced/SetDraining observers are safe from any goroutine — lookups read
// an atomic snapshot of the shard map, and per-shard introspection rides
// the dispatcher's lock-free accessors, so neither ever blocks the submit
// path.
type Router struct {
	eng *des.Engine
	cfg RouterConfig

	// shards is a copy-on-write snapshot map: lookups are one atomic load,
	// registration (rare) copies under regMu and publishes a new map.
	shards atomic.Pointer[map[string]*shard]
	regMu  sync.Mutex

	// globalMu is the RouterSingleQueue baseline's whole-router lock: held
	// across every submission and every Stats scrape, it reproduces the
	// contention profile of the pre-sharding single-FIFO dispatcher.
	globalMu sync.Mutex

	// Batch accounting (atomic: scraped by observers mid-run).
	batches  atomic.Int64
	batched  atomic.Int64
	maxBatch atomic.Int64

	tele       *obs.Telemetry
	obsBatches *obs.Counter
	obsBatched *obs.Counter
	obsShards  *obs.Gauge
}

// NewRouter builds an empty router on eng.
func NewRouter(eng *des.Engine, cfg RouterConfig) *Router {
	r := &Router{eng: eng, cfg: cfg}
	empty := map[string]*shard{}
	r.shards.Store(&empty)
	return r
}

// Mode returns the router's dispatch architecture.
func (r *Router) Mode() RouterMode { return r.cfg.Mode }

// SetObserver wires telemetry: aggregate batch counters plus, for every
// shard registered from now on, per-module labeled outcome counters
// (router_submitted_total{module="..."} and friends) alongside the
// dispatchers' shared unlabeled metrics. Call it before Register; shards
// registered earlier keep their previous handles.
func (r *Router) SetObserver(t *obs.Telemetry) {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	r.tele = t
	if t == nil {
		r.obsBatches, r.obsBatched, r.obsShards = nil, nil, nil
		return
	}
	r.obsBatches = t.Counter("router_batches_total")
	r.obsBatched = t.Counter("router_batched_requests_total")
	r.obsShards = t.Gauge("router_shards")
	r.obsShards.Set(int64(len(*r.shards.Load())))
}

// Register adds one shard: key is the routing key (the gateway uses the
// compiled module's content digest), module the human-readable name used
// for labeled metrics and stats. Safe from any goroutine; existing keys are
// rejected.
func (r *Router) Register(key, module string, d *Dispatcher) error {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	old := *r.shards.Load()
	if _, dup := old[key]; dup {
		return errors.New("serve: duplicate router key " + key)
	}
	sh := &shard{key: key, module: module, d: d}
	if r.tele != nil {
		sh.obsSubmitted = r.tele.Counter(obs.Labeled("router_submitted_total", "module", module))
		sh.obsCompleted = r.tele.Counter(obs.Labeled("router_completed_total", "module", module))
		sh.obsRejected = r.tele.Counter(obs.Labeled("router_rejected_total", "module", module))
		sh.obsExpired = r.tele.Counter(obs.Labeled("router_expired_total", "module", module))
		sh.obsFailed = r.tele.Counter(obs.Labeled("router_failed_total", "module", module))
	}
	next := make(map[string]*shard, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = sh
	r.shards.Store(&next)
	r.obsShards.Set(int64(len(next)))
	return nil
}

// Lookup resolves a routing key to its dispatcher. One atomic load — no
// lock on the submit path.
func (r *Router) Lookup(key string) (*Dispatcher, bool) {
	sh, ok := (*r.shards.Load())[key]
	if !ok {
		return nil, false
	}
	return sh.d, true
}

// Submit routes one request to its shard at the current simulated time.
// Must run on the DES goroutine (typically from inside a DES event — the
// gateway bridge injects submissions that way). In sharded mode the request
// joins the shard's pending batch and a flush event armed at the current
// instant admits the whole batch once every same-instant arrival has been
// appended; in single-queue mode it pays full per-request admission under
// the global lock. done may be nil; it runs exactly once with the final
// outcome. The only error is ErrUnknownModule, reported synchronously
// before done could run.
func (r *Router) Submit(key string, tid int64, done func(RequestResult)) error {
	return r.SubmitBatch(key, []BatchItem{{TID: tid, Done: done}})
}

// SubmitBatch routes a group of same-module requests at the current
// simulated time; see Submit for the threading contract and batching
// semantics.
func (r *Router) SubmitBatch(key string, items []BatchItem) error {
	sh, ok := (*r.shards.Load())[key]
	if !ok {
		return ErrUnknownModule
	}
	if len(items) == 0 {
		return nil
	}
	if sh.obsSubmitted != nil {
		sh.obsSubmitted.Add(int64(len(items)))
		for i, it := range items {
			prev := it.Done
			items[i].Done = func(res RequestResult) {
				sh.classify(res)
				if prev != nil {
					prev(res)
				}
			}
		}
	}
	if r.cfg.Mode == RouterSingleQueue {
		r.globalMu.Lock()
		for _, it := range items {
			sh.d.SubmitTID(it.TID, it.Done)
		}
		r.globalMu.Unlock()
		return nil
	}
	sh.pending = append(sh.pending, items...)
	if !sh.armed {
		sh.armed = true
		// Same-instant events run in schedule order, so every submission
		// injected during the current event lands before this flush and
		// coalesces into one batch.
		r.eng.At(r.eng.Now(), func() { r.flush(sh) })
	}
	return nil
}

// flush admits a shard's pending batch. It detaches the batch before
// submitting so a done callback that re-submits (a retrying client inside
// the simulation) starts a fresh batch instead of mutating the in-flight
// one.
func (r *Router) flush(sh *shard) {
	items := sh.pending
	sh.pending = nil
	sh.armed = false
	if len(items) == 0 {
		return
	}
	r.batches.Add(1)
	r.batched.Add(int64(len(items)))
	if n := int64(len(items)); n > r.maxBatch.Load() {
		r.maxBatch.Store(n)
	}
	r.obsBatches.Inc()
	r.obsBatched.Add(int64(len(items)))
	sh.d.SubmitBatch(items)
}

// ShardStats is one shard's introspection snapshot.
type ShardStats struct {
	Key      string
	Module   string
	Stats    DispatcherStats
	QueueLen int
	InFlight int
	Breaker  BreakerState
}

// IdentityHolds checks the admission conservation identity for this shard.
func (s ShardStats) IdentityHolds() bool {
	st := s.Stats
	return st.Submitted == st.Completed+st.Rejected+st.Expired+st.Failed
}

// RouterStats is the router's introspection snapshot: per-shard outcome
// counters plus their aggregate and the batch accounting.
type RouterStats struct {
	Mode            RouterMode
	Shards          []ShardStats
	Aggregate       DispatcherStats
	Batches         int64
	BatchedRequests int64
	MaxBatch        int64
}

// IdentityHolds checks the conservation identity per shard and in
// aggregate; authoritative once a run has drained.
func (s RouterStats) IdentityHolds() bool {
	for _, sh := range s.Shards {
		if !sh.IdentityHolds() {
			return false
		}
	}
	agg := s.Aggregate
	return agg.Submitted == agg.Completed+agg.Rejected+agg.Expired+agg.Failed
}

// Stats snapshots every shard (sorted by module, then key, for
// deterministic output) and the aggregate counters. In sharded mode the
// scrape is lock-free end to end: an atomic map load plus the dispatchers'
// atomic accessors. In single-queue mode it takes the global lock, exactly
// like the pre-sharding introspection it models.
func (r *Router) Stats() RouterStats {
	if r.cfg.Mode == RouterSingleQueue {
		r.globalMu.Lock()
		defer r.globalMu.Unlock()
	}
	shards := *r.shards.Load()
	out := RouterStats{
		Mode:            r.cfg.Mode,
		Shards:          make([]ShardStats, 0, len(shards)),
		Batches:         r.batches.Load(),
		BatchedRequests: r.batched.Load(),
		MaxBatch:        r.maxBatch.Load(),
	}
	for _, sh := range shards {
		st := sh.d.Stats()
		out.Shards = append(out.Shards, ShardStats{
			Key:      sh.key,
			Module:   sh.module,
			Stats:    st,
			QueueLen: sh.d.QueueLen(),
			InFlight: sh.d.InFlight(),
			Breaker:  sh.d.BreakerState(),
		})
		out.Aggregate.Submitted += st.Submitted
		out.Aggregate.Completed += st.Completed
		out.Aggregate.Rejected += st.Rejected
		out.Aggregate.Expired += st.Expired
		out.Aggregate.Failed += st.Failed
		out.Aggregate.Retries += st.Retries
		out.Aggregate.TimedOut += st.TimedOut
		out.Aggregate.BreakerOpens += st.BreakerOpens
		out.Aggregate.BreakerShortCircuits += st.BreakerShortCircuits
	}
	sort.Slice(out.Shards, func(i, j int) bool {
		if out.Shards[i].Module != out.Shards[j].Module {
			return out.Shards[i].Module < out.Shards[j].Module
		}
		return out.Shards[i].Key < out.Shards[j].Key
	})
	return out
}

// ShardLoad is the hot-path introspection read: one shard's queue length
// and in-flight count, the numbers the gateway stamps on every response
// (X-Queue-Len, X-In-Flight). In sharded mode it is lock-free end to end —
// an atomic map load plus two atomic counter reads. In single-queue mode it
// takes the global lock, reproducing the pre-sharding cost where every
// per-request introspection read serialized against admission.
func (r *Router) ShardLoad(key string) (queueLen, inFlight int, ok bool) {
	if r.cfg.Mode == RouterSingleQueue {
		r.globalMu.Lock()
		defer r.globalMu.Unlock()
	}
	sh, found := (*r.shards.Load())[key]
	if !found {
		return 0, 0, false
	}
	return sh.d.QueueLen(), sh.d.InFlight(), true
}

// Modules lists the registered module names, sorted.
func (r *Router) Modules() []string {
	shards := *r.shards.Load()
	out := make([]string, 0, len(shards))
	for _, sh := range shards {
		out = append(out, sh.module)
	}
	sort.Strings(out)
	return out
}

// SetDraining flips every shard's draining state. Safe from any goroutine.
func (r *Router) SetDraining(v bool) {
	for _, sh := range *r.shards.Load() {
		sh.d.SetDraining(v)
	}
}

// Quiesced reports whether every shard holds no work. Batches pending a
// flush count as work only until their flush event runs, which under the
// DES contract has happened whenever the engine is idle.
func (r *Router) Quiesced() bool {
	for _, sh := range *r.shards.Load() {
		if !sh.d.Quiesced() {
			return false
		}
	}
	return true
}

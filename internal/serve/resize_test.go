package serve

import (
	"strings"
	"testing"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
)

func TestPoolResize(t *testing.T) {
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	if pool.TargetSize() != 1 || pool.Idle() != 1 {
		t.Fatalf("start: target=%d idle=%d, want 1/1", pool.TargetSize(), pool.Idle())
	}
	before := pool.Stats()

	// Grow: the missing instances appear idle, as warming, not cold starts.
	delta, err := pool.Resize(4)
	if err != nil {
		t.Fatal(err)
	}
	if delta != 3 || pool.Idle() != 4 || pool.TargetSize() != 4 {
		t.Fatalf("grow: delta=%d idle=%d target=%d, want 3/4/4", delta, pool.Idle(), pool.TargetSize())
	}
	if got := pool.Stats().ColdStarts; got != before.ColdStarts {
		t.Fatalf("grow counted %d cold starts", got-before.ColdStarts)
	}

	// Grow counts leased instances toward the target: with one leased and
	// four idle, a target of 5 adds nothing.
	wi, ok := pool.Acquire(0)
	if !ok {
		t.Fatal("pool dry after grow")
	}
	delta, err = pool.Resize(5)
	if err != nil {
		t.Fatal(err)
	}
	if delta != 1 || pool.Idle() != 4 {
		t.Fatalf("grow under lease: delta=%d idle=%d, want 1/4", delta, pool.Idle())
	}
	pool.Release(wi, 0)
	if pool.Idle() != 5 {
		t.Fatalf("idle = %d after release, want 5", pool.Idle())
	}

	// Shrink: surplus idle instances are evicted now and their memory released.
	memBefore := pool.MemoryBytes()
	delta, err = pool.Resize(2)
	if err != nil {
		t.Fatal(err)
	}
	if delta != -3 || pool.Idle() != 2 || pool.TargetSize() != 2 {
		t.Fatalf("shrink: delta=%d idle=%d target=%d, want -3/2/2", delta, pool.Idle(), pool.TargetSize())
	}
	if pool.MemoryBytes() >= memBefore {
		t.Fatal("shrink released no memory")
	}
	if evicted := pool.Stats().Evicted - before.Evicted; evicted != 3 {
		t.Fatalf("shrink evicted %d, want 3", evicted)
	}
}

func TestRunMultiValidation(t *testing.T) {
	sim := des.NewEngine()
	cases := []struct {
		name string
		cfg  MultiConfig
		want string
	}{
		{"no modules", MultiConfig{RatePerSec: 100, Duration: time.Millisecond}, "Modules is empty"},
		{"zero rate", MultiConfig{Modules: []string{"a"}, Duration: time.Millisecond}, "RatePerSec"},
		{"zipf exponent in (0,1]", MultiConfig{
			RatePerSec: 100, Duration: time.Millisecond, Modules: []string{"a", "b"}, ZipfS: 0.9,
		}, "exponent > 1"},
		{"zipf over one module", MultiConfig{
			RatePerSec: 100, Duration: time.Millisecond, Modules: []string{"a"}, ZipfS: 1.1,
		}, "meaningless over 1 module"},
	}
	for _, tc := range cases {
		_, err := RunMulti(sim, nil, tc.cfg)
		if err == nil {
			t.Fatalf("%s: config accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

package serve

import (
	"strings"
	"testing"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/wasm/exec"
)

// TestWarmPoolPicksUpTier1: a warm pool serving repeated requests crosses the
// hotness threshold, the shared module tiers up once, and every pooled
// instance serves subsequent invokes from the tier-1 body — visible as a
// cheaper simulated invoke time at identical instruction counts, with the
// artifact charged to pool memory exactly once.
func TestWarmPoolPicksUpTier1(t *testing.T) {
	pool := newTestPoolPolicy(t, engine.WAMR, Config{Size: 2},
		exec.TierPolicy{Mode: exec.TierModeHotness, InvokeThreshold: 3})
	memBefore := pool.MemoryBytes()

	var t0Sim, t1Sim int64
	var t0Instr, t1Instr uint64
	for i := 0; i < 12; i++ {
		wi, ok := pool.Acquire(0)
		if !ok {
			t.Fatalf("request %d: pool dry", i)
		}
		res, err := wi.Invoke("handle", exec.I32(16))
		if err != nil {
			t.Fatal(err)
		}
		switch res.Tier {
		case 0:
			t0Sim, t0Instr = res.SimulatedExecTime.Nanoseconds(), res.Instructions
		case 1:
			t1Sim, t1Instr = res.SimulatedExecTime.Nanoseconds(), res.Instructions
		}
		pool.Release(wi, 0)
	}
	if t0Instr == 0 || t1Instr == 0 {
		t.Fatalf("did not observe both tiers (t0 instr %d, t1 instr %d)", t0Instr, t1Instr)
	}
	// Identical request, identical retired instructions — tier 1 only changes
	// the per-instruction rate (WAMR's Tier1Speedup is 2.5).
	if t0Instr != t1Instr {
		t.Fatalf("instruction counts diverged across tiers: %d vs %d", t0Instr, t1Instr)
	}
	if t1Sim*2 >= t0Sim {
		t.Fatalf("tier-1 sim time %dns not visibly below tier-0 %dns", t1Sim, t0Sim)
	}

	// The artifact is charged once, not per instance.
	t1b := pool.SharedTier1Bytes()
	if t1b <= 0 {
		t.Fatal("no tier-1 bytes accounted")
	}
	if delta := pool.MemoryBytes() - memBefore; delta != t1b {
		t.Fatalf("pool memory grew %d, want exactly one tier-1 artifact %d", delta, t1b)
	}
	found := false
	for _, art := range pool.SharedArtifacts() {
		if strings.HasPrefix(art.Name, "wasm-t1:") {
			found = true
			if art.Bytes != t1b {
				t.Fatalf("artifact bytes %d != accounted %d", art.Bytes, t1b)
			}
		}
	}
	if !found {
		t.Fatalf("wasm-t1 artifact missing from %v", pool.SharedArtifacts())
	}
}

package serve

import (
	"sync"
	"testing"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/obs"
)

// runObservedLoad wires a telemetry instance (on the DES clock) into a
// dispatcher and drives one congested load run: pool smaller than the
// concurrency limit, queueing enabled, so warm hits, cold starts, queue
// waits, invokes, and resets all occur.
func runObservedLoad(t *testing.T) (*obs.Telemetry, Report) {
	t.Helper()
	eng := des.NewEngine()
	tele := obs.New(obs.Config{Clock: func() int64 { return int64(eng.Now()) }})
	pool := newTestPool(t, engine.WAMR, Config{Size: 2})
	pool.Engine().SetObserver(tele)
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 4, QueueDepth: 64, Policy: PolicyQueue,
		QueueDeadline: 10 * time.Second, Export: "handle", Arg: 500,
	})
	d.SetObserver(tele)
	rep := Run(eng, d, LoadConfig{RatePerSec: 200, Duration: time.Second, Seed: 5})
	return tele, rep
}

// TestServingTelemetryCountersMatchReport asserts the telemetry counters
// agree with the report the harness computes independently.
func TestServingTelemetryCountersMatchReport(t *testing.T) {
	tele, rep := runObservedLoad(t)
	reg := tele.Metrics()
	check := func(name string, want int64) {
		t.Helper()
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check("loadgen_offered_total", rep.Offered)
	check("dispatch_submitted_total", rep.Dispatcher.Submitted)
	check("dispatch_completed_total", rep.Dispatcher.Completed)
	check("dispatch_rejected_total", rep.Dispatcher.Rejected)
	check("dispatch_expired_total", rep.Dispatcher.Expired)
	check("dispatch_failed_total", rep.Dispatcher.Failed)
	check("pool_warm_hits_total", rep.Pool.WarmHits)
	check("pool_cold_starts_total", rep.Pool.ColdStarts)
	check("pool_recycled_total", rep.Pool.Recycled)
	check("pool_discarded_total", rep.Pool.Discarded)
	if got := reg.Histogram("pool_reset_dirty_pages").Count(); got != rep.Pool.Recycled+rep.Pool.Discarded {
		t.Errorf("reset histogram count = %d, want %d releases", got, rep.Pool.Recycled+rep.Pool.Discarded)
	}
	if got := reg.Histogram("pool_reset_dirty_pages").Sum(); got != rep.Pool.ResetPages {
		t.Errorf("reset histogram sum = %d, want %d pages", got, rep.Pool.ResetPages)
	}
	if got := reg.Histogram("loadgen_e2e_latency_ns").Count(); got != int64(rep.Latency.N) {
		t.Errorf("latency histogram count = %d, want %d", got, rep.Latency.N)
	}
	// Gauges settle to an idle system.
	if got := reg.Gauge("dispatch_in_flight").Value(); got != 0 {
		t.Errorf("in-flight gauge = %d after drain", got)
	}
	if got := reg.Gauge("pool_leased_instances").Value(); got != 0 {
		t.Errorf("leased gauge = %d after drain", got)
	}
}

// TestServingTelemetryLifecycleSpans asserts the trace covers every phase of
// the request lifecycle with the attributes the acceptance criteria name:
// queue-wait, acquire (warm/cold split), invoke (instruction counts), and
// reset (dirty pages).
func TestServingTelemetryLifecycleSpans(t *testing.T) {
	tele, rep := runObservedLoad(t)
	spans := tele.Tracer().Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	attr := func(s obs.Span, key string) (int64, bool) {
		for _, a := range s.Attrs {
			if a.Key == key {
				return a.Val, true
			}
		}
		return 0, false
	}
	phases := map[string]int{}
	var coldAcquires, warmAcquires int64
	var resetPagesTotal int64
	for _, s := range spans {
		phases[s.Name]++
		switch s.Name {
		case "acquire":
			cold, ok := attr(s, "cold")
			if !ok {
				t.Fatalf("acquire span missing cold attr: %+v", s)
			}
			if cold == 1 {
				coldAcquires++
			} else {
				warmAcquires++
			}
		case "invoke":
			if _, ok := attr(s, "instructions"); !ok {
				t.Fatalf("invoke span missing instructions attr: %+v", s)
			}
		case "reset":
			pages, ok := attr(s, "dirty_pages")
			if !ok {
				t.Fatalf("reset span missing dirty_pages attr: %+v", s)
			}
			resetPagesTotal += pages
		case "queue-wait":
			if s.Dur <= 0 {
				t.Fatalf("queue-wait span with non-positive duration: %+v", s)
			}
		}
	}
	for _, want := range []string{"queue-wait", "acquire", "invoke", "reset", "instantiate"} {
		if phases[want] == 0 {
			t.Errorf("no %q spans recorded (phases: %v)", want, phases)
		}
	}
	if coldAcquires != rep.Pool.ColdStarts {
		t.Errorf("cold acquire spans = %d, want %d", coldAcquires, rep.Pool.ColdStarts)
	}
	if warmAcquires != rep.Pool.WarmHits {
		t.Errorf("warm acquire spans = %d, want %d", warmAcquires, rep.Pool.WarmHits)
	}
	if resetPagesTotal != rep.Pool.ResetPages {
		t.Errorf("dirty pages across reset spans = %d, want %d", resetPagesTotal, rep.Pool.ResetPages)
	}
	// Spans ride the simulated clock: every span must start within the run's
	// makespan.
	for _, s := range spans {
		if s.Start < 0 || s.Start > int64(rep.Makespan) {
			t.Fatalf("span outside simulated timeline [0,%d]: %+v", int64(rep.Makespan), s)
		}
	}
}

// TestDispatcherObserverRace drives a DES load run on one goroutine while
// eight observer goroutines poll Stats, QueueLen, and InFlight — the
// synchronization contract Stats() documents, checked under -race by make
// race.
func TestDispatcherObserverRace(t *testing.T) {
	eng := des.NewEngine()
	tele := obs.New(obs.Config{Clock: func() int64 { return int64(eng.Now()) }})
	pool := newTestPool(t, engine.WAMR, Config{Size: 2})
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 2, QueueDepth: 32, Policy: PolicyQueue,
		QueueDeadline: 10 * time.Second, Export: "handle", Arg: 500,
	})
	d.SetObserver(tele)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := d.Stats()
				if st.Completed < 0 || d.QueueLen() < 0 || d.InFlight() < 0 {
					t.Error("impossible negative reading")
					return
				}
				_ = tele.Snapshot()
				_ = tele.Tracer().Spans()
			}
		}()
	}
	rep := Run(eng, d, LoadConfig{RatePerSec: 300, Duration: time.Second, Seed: 9})
	close(stop)
	wg.Wait()
	if rep.Dispatcher.Completed == 0 {
		t.Fatalf("degenerate run: %+v", rep.Dispatcher)
	}
	if st := d.Stats(); st != rep.Dispatcher {
		t.Fatalf("final stats drifted: %+v vs %+v", st, rep.Dispatcher)
	}
}

package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/wasm/exec"
)

// TestPoolConcurrentReuseNoStateBleed hammers one pool from many goroutines
// under the race detector. Every request invokes the request-handler
// workload, whose return value is a per-instance counter in linear memory:
// it reads 1 on a fresh or correctly reset instance and climbs if any guest
// state survives between requests. The test therefore asserts both memory
// safety (run it with -race) and full linear-memory reset across reuse.
func TestPoolConcurrentReuseNoStateBleed(t *testing.T) {
	const (
		goroutines = 8
		iterations = 50
	)
	pool := newTestPool(t, engine.WAMR, Config{Size: 4})
	var wg sync.WaitGroup
	var bled atomic.Int64
	var errs atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				wi, ok := pool.Acquire(0)
				if !ok {
					var err error
					wi, err = pool.ColdStart()
					if err != nil {
						errs.Add(1)
						return
					}
				}
				res, err := wi.Invoke("handle", exec.I32(64))
				if err != nil {
					errs.Add(1)
				} else if exec.AsI32(res.Values[0]) != 1 {
					bled.Add(1)
				}
				pool.Release(wi, 0)
			}
		}()
	}
	wg.Wait()
	if n := errs.Load(); n != 0 {
		t.Fatalf("%d invocations failed", n)
	}
	if n := bled.Load(); n != 0 {
		t.Fatalf("%d requests observed stale guest state from a previous request", n)
	}
	if pool.Leased() != 0 {
		t.Fatalf("leaked leases: %d", pool.Leased())
	}
	st := pool.Stats()
	if st.WarmHits+st.ColdStarts != goroutines*iterations {
		t.Fatalf("stats don't add up: %+v", st)
	}
	if st.WarmHits == 0 {
		t.Fatal("no warm reuse happened; the test exercised nothing")
	}
	// Conservation: every instance ever created is either idle or gone.
	if st.Recycled+st.Discarded != goroutines*iterations {
		t.Fatalf("release accounting off: %+v", st)
	}
}

package serve

import (
	"math/rand"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/metrics"
)

// LoadConfig shapes one open-loop load run.
type LoadConfig struct {
	// RatePerSec is the mean arrival rate of the Poisson process.
	RatePerSec float64
	// Duration is the simulated arrival window; requests arriving after it
	// are not generated (in-flight work still drains).
	Duration time.Duration
	// Seed makes the arrival sequence reproducible.
	Seed int64
}

// Report aggregates one load run.
type Report struct {
	// Offered is the number of generated requests.
	Offered int64
	// Latency summarizes end-to-end seconds over all completed requests.
	Latency metrics.Summary
	// WarmLatency and ColdLatency split completed requests by whether they
	// paid a cold-start fallback.
	WarmLatency metrics.Summary
	ColdLatency metrics.Summary
	// Dispatcher is the final outcome snapshot.
	Dispatcher DispatcherStats
	// Pool is the final pool traffic snapshot.
	Pool Stats
	// PoolHighWaterBytes is the peak accounted pool memory over the run.
	PoolHighWaterBytes int64
	// Makespan is the simulated time at which the last event settled.
	Makespan time.Duration
}

// Run generates an open-loop Poisson arrival stream against the dispatcher
// and drives the DES engine to completion. Arrivals are open-loop: they do
// not wait for responses, exactly like independent clients. The same seed
// and configuration always reproduce the same report.
func Run(eng *des.Engine, d *Dispatcher, cfg LoadConfig) Report {
	rep := Report{}
	var all, warmLat, coldLat []float64
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Resolve load-generator handles from the dispatcher's telemetry: nil
	// (and free) when observation is disabled.
	tele := d.Telemetry()
	offered := tele.Counter("loadgen_offered_total")
	e2eNs := tele.Histogram("loadgen_e2e_latency_ns")
	// Chained exponential gaps give a Poisson process.
	record := func(r RequestResult) {
		if !r.Admitted || r.Err != nil {
			return
		}
		s := r.Latency.Seconds()
		e2eNs.Record(int64(r.Latency))
		all = append(all, s)
		if r.Cold {
			coldLat = append(coldLat, s)
		} else {
			warmLat = append(warmLat, s)
		}
	}
	at := des.Time(rng.ExpFloat64() / cfg.RatePerSec * float64(time.Second))
	for at <= des.Time(cfg.Duration) {
		rep.Offered++
		offered.Inc()
		eng.At(at, func() { d.Submit(record) })
		at += des.Time(rng.ExpFloat64() / cfg.RatePerSec * float64(time.Second))
	}
	end := eng.Run()

	rep.Latency = metrics.Summarize(all)
	rep.WarmLatency = metrics.Summarize(warmLat)
	rep.ColdLatency = metrics.Summarize(coldLat)
	rep.Dispatcher = d.Stats()
	rep.Pool = d.Pool().Stats()
	rep.PoolHighWaterBytes = d.Pool().HighWater()
	rep.Makespan = time.Duration(end)
	return rep
}

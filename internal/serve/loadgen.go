package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/metrics"
)

// LoadConfig shapes one open-loop load run.
type LoadConfig struct {
	// RatePerSec is the mean arrival rate of the Poisson process.
	RatePerSec float64
	// Duration is the simulated arrival window; requests arriving after it
	// are not generated (in-flight work still drains).
	Duration time.Duration
	// Seed makes the arrival sequence reproducible.
	Seed int64
}

// ModuleReport is one module's slice of a multi-module load run.
type ModuleReport struct {
	// Module is the module (shard) name.
	Module string
	// Offered is the number of requests generated for this module.
	Offered int64
	// Completed is the number that ran to completion.
	Completed int64
	// Latency summarizes end-to-end seconds over this module's completed
	// requests (P50/P99 are the debuggability knobs for shard imbalance).
	Latency metrics.Summary
	// Dispatcher is the shard's final outcome snapshot.
	Dispatcher DispatcherStats
}

// Report aggregates one load run.
type Report struct {
	// Offered is the number of generated requests.
	Offered int64
	// Latency summarizes end-to-end seconds over all completed requests.
	Latency metrics.Summary
	// WarmLatency and ColdLatency split completed requests by whether they
	// paid a cold-start fallback.
	WarmLatency metrics.Summary
	ColdLatency metrics.Summary
	// Dispatcher is the final outcome snapshot; for multi-module runs it is
	// the aggregate over every shard.
	Dispatcher DispatcherStats
	// Pool is the final pool traffic snapshot. Multi-module runs have one
	// pool per shard and leave this zero; see Modules instead.
	Pool Stats
	// PoolHighWaterBytes is the peak accounted pool memory over the run.
	PoolHighWaterBytes int64
	// Makespan is the simulated time at which the last event settled.
	Makespan time.Duration
	// Modules is the per-module breakdown of a multi-module run, sorted by
	// offered count descending (hottest shard first), then by name. Empty
	// for single-module runs.
	Modules []ModuleReport
}

// Run generates an open-loop Poisson arrival stream against the dispatcher
// and drives the DES engine to completion. Arrivals are open-loop: they do
// not wait for responses, exactly like independent clients. The same seed
// and configuration always reproduce the same report.
func Run(eng *des.Engine, d *Dispatcher, cfg LoadConfig) Report {
	rep := Report{}
	var all, warmLat, coldLat []float64
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Resolve load-generator handles from the dispatcher's telemetry: nil
	// (and free) when observation is disabled.
	tele := d.Telemetry()
	offered := tele.Counter("loadgen_offered_total")
	e2eNs := tele.Histogram("loadgen_e2e_latency_ns")
	// Chained exponential gaps give a Poisson process.
	record := func(r RequestResult) {
		if !r.Admitted || r.Err != nil {
			return
		}
		s := r.Latency.Seconds()
		e2eNs.Record(int64(r.Latency))
		all = append(all, s)
		if r.Cold {
			coldLat = append(coldLat, s)
		} else {
			warmLat = append(warmLat, s)
		}
	}
	at := des.Time(rng.ExpFloat64() / cfg.RatePerSec * float64(time.Second))
	for at <= des.Time(cfg.Duration) {
		rep.Offered++
		offered.Inc()
		eng.At(at, func() { d.Submit(record) })
		at += des.Time(rng.ExpFloat64() / cfg.RatePerSec * float64(time.Second))
	}
	end := eng.Run()

	rep.Latency = metrics.Summarize(all)
	rep.WarmLatency = metrics.Summarize(warmLat)
	rep.ColdLatency = metrics.Summarize(coldLat)
	rep.Dispatcher = d.Stats()
	rep.Pool = d.Pool().Stats()
	rep.PoolHighWaterBytes = d.Pool().HighWater()
	rep.Makespan = time.Duration(end)
	return rep
}

// MultiConfig shapes one open-loop multi-module load run against a
// MultiTarget (a Router or a cluster.Serving).
type MultiConfig struct {
	// RatePerSec is the mean aggregate arrival rate of the Poisson process.
	RatePerSec float64
	// Duration is the simulated arrival window.
	Duration time.Duration
	// Seed makes the arrival and module-pick sequences reproducible.
	Seed int64
	// Modules are the routing keys traffic is spread over, in popularity
	// order. Rank 0 is hottest: Modules[0] receives the most traffic under
	// Zipf popularity, Modules[len-1] the least.
	Modules []string
	// ZipfS selects the popularity distribution: 0 spreads arrivals
	// uniformly; > 1 draws each arrival's module from a Zipf distribution
	// with exponent s over Modules. Any other value (including the
	// 0 < s <= 1 range, where Go's rand.Zipf is undefined) is a
	// configuration error, and Zipf skew needs at least two modules —
	// RunMulti rejects both instead of silently degrading to uniform.
	ZipfS float64
}

// validate enforces the MultiConfig contract documented on the fields.
func (cfg MultiConfig) validate() error {
	if len(cfg.Modules) == 0 {
		return errors.New("serve: MultiConfig.Modules is empty")
	}
	if cfg.RatePerSec <= 0 {
		return fmt.Errorf("serve: MultiConfig.RatePerSec = %g, need > 0", cfg.RatePerSec)
	}
	if cfg.ZipfS != 0 && cfg.ZipfS <= 1 {
		return fmt.Errorf("serve: MultiConfig.ZipfS = %g: Zipf popularity needs an exponent > 1 (use 0 for uniform)", cfg.ZipfS)
	}
	if cfg.ZipfS > 1 && len(cfg.Modules) < 2 {
		return fmt.Errorf("serve: MultiConfig.ZipfS = %g is meaningless over %d module (use 0 for a single module)", cfg.ZipfS, len(cfg.Modules))
	}
	return nil
}

// MultiTarget is the routing surface RunMulti drives: the single-node Router
// and the cluster-level Serving front both implement it.
type MultiTarget interface {
	// Submit routes one request to the named module's dispatcher.
	Submit(key string, tenant int64, done func(RequestResult)) error
	// Stats snapshots per-module outcomes for the report breakdown.
	Stats() RouterStats
}

// RunMulti generates one open-loop Poisson arrival stream whose requests
// are spread over the target's modules — Zipf-skewed when cfg.ZipfS > 1,
// uniform when cfg.ZipfS == 0 — and drives the DES engine to completion.
// The same seed and configuration always reproduce the same report,
// including the per-module breakdown. Invalid configurations (see
// MultiConfig.ZipfS) return an error before generating any load.
func RunMulti(eng *des.Engine, rt MultiTarget, cfg MultiConfig) (Report, error) {
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	rep := Report{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Modules)-1))
	}
	pick := func() string {
		if zipf != nil {
			return cfg.Modules[zipf.Uint64()]
		}
		return cfg.Modules[rng.Intn(len(cfg.Modules))]
	}
	var all, warmLat, coldLat []float64
	offered := map[string]int64{}
	latByMod := map[string][]float64{}
	record := func(module string) func(RequestResult) {
		return func(r RequestResult) {
			if !r.Admitted || r.Err != nil {
				return
			}
			s := r.Latency.Seconds()
			all = append(all, s)
			latByMod[module] = append(latByMod[module], s)
			if r.Cold {
				coldLat = append(coldLat, s)
			} else {
				warmLat = append(warmLat, s)
			}
		}
	}
	at := des.Time(rng.ExpFloat64() / cfg.RatePerSec * float64(time.Second))
	for at <= des.Time(cfg.Duration) {
		m := pick()
		rep.Offered++
		offered[m]++
		done := record(m)
		eng.At(at, func() { _ = rt.Submit(m, 0, done) })
		at += des.Time(rng.ExpFloat64() / cfg.RatePerSec * float64(time.Second))
	}
	end := eng.Run()

	rep.Latency = metrics.Summarize(all)
	rep.WarmLatency = metrics.Summarize(warmLat)
	rep.ColdLatency = metrics.Summarize(coldLat)
	rep.Makespan = time.Duration(end)
	rs := rt.Stats()
	rep.Dispatcher = rs.Aggregate
	for _, sh := range rs.Shards {
		if offered[sh.Key] == 0 && sh.Stats.Submitted == 0 {
			continue
		}
		rep.Modules = append(rep.Modules, ModuleReport{
			Module:     sh.Module,
			Offered:    offered[sh.Key],
			Completed:  sh.Stats.Completed,
			Latency:    metrics.Summarize(latByMod[sh.Key]),
			Dispatcher: sh.Stats,
		})
	}
	sort.Slice(rep.Modules, func(i, j int) bool {
		if rep.Modules[i].Offered != rep.Modules[j].Offered {
			return rep.Modules[i].Offered > rep.Modules[j].Offered
		}
		return rep.Modules[i].Module < rep.Modules[j].Module
	})
	return rep, nil
}

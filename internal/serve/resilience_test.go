package serve

import (
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/faults"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/wasm/exec"
)

// TestQueuedRequestsSurviveColdStartFailure is the regression test for the
// dispatcher stall: the cold-start failure path used to release its
// concurrency slot without draining the queue, so when the failing request
// was the only one in flight, every queued request hung until the simulation
// ended. All submitted requests must reach a terminal callback even when
// every instantiation fails.
func TestQueuedRequestsSurviveColdStartFailure(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 0}) // every request cold-starts
	pool.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 1, InstantiateFailRate: 1}))
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, QueueDepth: 4, Policy: PolicyQueue,
		Export: "handle", Arg: 16,
	})
	var callbacks, failed int
	for i := 0; i < 3; i++ {
		d.Submit(func(r RequestResult) {
			callbacks++
			if r.Admitted && r.Err != nil {
				failed++
			}
		})
	}
	eng.Run()
	if callbacks != 3 {
		t.Fatalf("%d of 3 callbacks fired — queued requests stalled", callbacks)
	}
	st := d.Stats()
	if st.Failed != 3 || failed != 3 {
		t.Fatalf("stats = %+v (failed callbacks: %d)", st, failed)
	}
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		t.Fatalf("accounting identity broken: %+v", st)
	}
	if d.QueueLen() != 0 || d.InFlight() != 0 {
		t.Fatalf("queue=%d inflight=%d after drain", d.QueueLen(), d.InFlight())
	}
}

// TestFailedInvokeLatencyAccounting is the regression test for failure
// accounting: a trapped invoke used to end its span and free its slot at
// overhead+exec but report a latency without the executed time, and failed
// requests never reached the latency histogram. Latency must now equal the
// simulated time the request actually held its slot, and the histogram must
// count failures.
func TestFailedInvokeLatencyAccounting(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	pool.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 5, TrapRate: 1}))
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, Policy: PolicyReject, Export: "handle", Arg: 500,
	})
	tele := obs.New(obs.Config{Clock: func() int64 { return int64(eng.Now()) }})
	d.SetObserver(tele)
	var res RequestResult
	var completedAt des.Time
	d.Submit(func(r RequestResult) {
		res = r
		completedAt = eng.Now()
	})
	eng.Run()
	if res.Err == nil {
		t.Fatal("injected trap did not surface")
	}
	if res.Latency != time.Duration(completedAt) {
		t.Fatalf("latency %v != slot-held time %v: failed request under-reports",
			res.Latency, time.Duration(completedAt))
	}
	if res.Latency < engine.WAMR.WarmInvokeOverhead {
		t.Fatalf("latency %v below warm overhead", res.Latency)
	}
	hist := tele.Histogram("dispatch_latency_ns")
	if hist.Count() != 1 {
		t.Fatalf("latency histogram count = %d, want failed request recorded", hist.Count())
	}
	if hist.Sum() != int64(res.Latency) {
		t.Fatalf("histogram sum %d != reported latency %d", hist.Sum(), int64(res.Latency))
	}
}

// TestExpiryAtAdmissionPreventsSpuriousRejection is the regression test for
// lazy deadline expiry: an already-expired queued request used to hold its
// QueueDepth slot until drain time, so a fresh arrival was rejected by a
// queue that was effectively empty. Expiry must run at admission, before the
// depth check.
func TestExpiryAtAdmissionPreventsSpuriousRejection(t *testing.T) {
	// Measure one solo warm request to scale the scenario deterministically.
	solo := func() time.Duration {
		eng := des.NewEngine()
		pool := newTestPool(t, engine.WAMR, Config{Size: 1})
		d := NewDispatcher(eng, pool, DispatcherConfig{
			MaxConcurrency: 1, Policy: PolicyReject, Export: "handle", Arg: 500,
		})
		var l time.Duration
		d.Submit(func(r RequestResult) { l = r.Latency })
		eng.Run()
		return l
	}()
	if solo <= 0 {
		t.Fatal("could not measure solo latency")
	}

	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, QueueDepth: 1, Policy: PolicyQueue,
		QueueDeadline: solo / 2, Export: "handle", Arg: 500,
	})
	var results []RequestResult
	record := func(r RequestResult) { results = append(results, r) }
	// A occupies the slot until ~solo; B queues at t=0 and expires at
	// t=solo/2; C arrives at t=3*solo/4 — with lazy admission expiry the dead
	// B frees its slot and C queues (waiting ~solo/4 < deadline), instead of
	// being rejected by a full-of-corpses queue.
	d.Submit(record)
	d.Submit(record)
	eng.At(des.Time(3*solo/4), func() { d.Submit(record) })
	eng.Run()
	st := d.Stats()
	if st.Rejected != 0 {
		t.Fatalf("fresh request rejected while queue held only expired heads: %+v", st)
	}
	if st.Completed != 2 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want A and C completed, B expired", st)
	}
	if len(results) != 3 {
		t.Fatalf("%d callbacks fired", len(results))
	}
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		t.Fatalf("accounting identity broken: %+v", st)
	}
}

// TestRetrySucceedsAfterTransientFailure: a request whose first attempt hits
// an instantiation failure retries after the backoff and completes; latency
// includes the backoff and the accounting lands on Completed, not Failed.
func TestRetrySucceedsAfterTransientFailure(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 0})
	pool.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 2, InstantiateFailRate: 1}))
	// The fault clears mid-backoff: the retry lands on a healthy engine.
	eng.At(des.Time(500*time.Microsecond), func() { pool.Engine().SetFaultInjector(nil) })
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, Policy: PolicyReject, Export: "handle", Arg: 16,
		MaxRetries: 3, RetryBackoff: time.Millisecond,
	})
	var res RequestResult
	var completedAt des.Time
	d.Submit(func(r RequestResult) { res, completedAt = r, eng.Now() })
	eng.Run()
	if res.Err != nil {
		t.Fatalf("retry did not recover: %v", res.Err)
	}
	if res.Attempts != 2 || res.RetryWait != time.Millisecond {
		t.Fatalf("attempts=%d retryWait=%v, want 2 attempts after one 1ms backoff",
			res.Attempts, res.RetryWait)
	}
	if res.Latency != time.Duration(completedAt) {
		t.Fatalf("latency %v != completion time %v", res.Latency, time.Duration(completedAt))
	}
	st := d.Stats()
	if st.Completed != 1 || st.Failed != 0 || st.Retries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRequestTimeoutBoundsRetries: with a permanently failing engine and a
// small RequestTimeout, the retry loop stops as soon as the next backoff
// would end past the deadline and the request fails with ErrRequestTimeout.
func TestRequestTimeoutBoundsRetries(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 0})
	pool.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 3, InstantiateFailRate: 1}))
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, Policy: PolicyReject, Export: "handle", Arg: 16,
		MaxRetries: 100, RetryBackoff: time.Millisecond, RetryBackoffCap: 4 * time.Millisecond,
		RequestTimeout: 10 * time.Millisecond,
	})
	var res RequestResult
	d.Submit(func(r RequestResult) { res = r })
	eng.Run()
	if !errors.Is(res.Err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", res.Err)
	}
	if !errors.Is(res.Err, faults.ErrInstantiate) {
		t.Fatalf("err = %v does not wrap the underlying cause", res.Err)
	}
	// Backoffs 1+2+4+4 = 11ms > 10ms: the fifth attempt never runs.
	if res.Attempts != 4 || res.RetryWait != 7*time.Millisecond {
		t.Fatalf("attempts=%d retryWait=%v, want 4 and 7ms", res.Attempts, res.RetryWait)
	}
	st := d.Stats()
	if st.Failed != 1 || st.TimedOut != 1 || st.Retries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBreakerOpensAndShortCircuits: consecutive failures trip the breaker at
// the threshold; while open, PolicyReject arrivals are turned away without
// touching the pool, counted as breaker short-circuits.
func TestBreakerOpensAndShortCircuits(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 0})
	pool.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 4, InstantiateFailRate: 1}))
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 4, Policy: PolicyReject, Export: "handle", Arg: 16,
		BreakerThreshold: 3, BreakerCooldown: 10 * time.Millisecond,
	})
	// Three failures at 0/1/2ms open the breaker; the 3ms arrival is
	// short-circuited; the fault clears at 5ms; after the 12ms half-open the
	// 15ms arrival probes, succeeds, and closes the breaker.
	for i := 0; i < 3; i++ {
		eng.At(des.Time(time.Duration(i)*time.Millisecond), func() { d.Submit(nil) })
	}
	eng.At(des.Time(3*time.Millisecond), func() {
		if d.BreakerState() != BreakerOpen {
			t.Error("breaker not open after threshold failures")
		}
		d.Submit(nil)
	})
	eng.At(des.Time(5*time.Millisecond), func() { pool.Engine().SetFaultInjector(nil) })
	eng.At(des.Time(15*time.Millisecond), func() {
		if d.BreakerState() != BreakerHalfOpen {
			t.Error("breaker not half-open after cooldown")
		}
		d.Submit(nil)
	})
	eng.Run()
	if d.BreakerState() != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", d.BreakerState())
	}
	st := d.Stats()
	if st.Failed != 3 || st.Rejected != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BreakerOpens != 1 || st.BreakerShortCircuits != 1 {
		t.Fatalf("breaker stats = %+v", st)
	}
}

// TestBreakerHoldsQueueUntilHalfOpenProbe: under PolicyQueue an open breaker
// parks arrivals instead of rejecting them, and the half-open timer drains
// the queue — the head becomes the probe and, on success, the rest follow.
func TestBreakerHoldsQueueUntilHalfOpenProbe(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 0})
	pool.Engine().SetFaultInjector(faults.New(faults.Config{Seed: 6, InstantiateFailRate: 1}))
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 2, QueueDepth: 8, Policy: PolicyQueue,
		Export: "handle", Arg: 16,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Millisecond,
	})
	var order []des.Time
	done := func(r RequestResult) {
		if r.Admitted && r.Err == nil {
			order = append(order, eng.Now())
		}
	}
	for i := 0; i < 2; i++ {
		eng.At(des.Time(time.Duration(i)*time.Millisecond), func() { d.Submit(nil) })
	}
	// Queued while open: both must wait for the half-open transition at 11ms.
	eng.At(des.Time(2*time.Millisecond), func() {
		d.Submit(done)
		d.Submit(done)
		if got := d.QueueLen(); got != 2 {
			t.Errorf("queue = %d while breaker open, want 2 parked", got)
		}
	})
	eng.At(des.Time(5*time.Millisecond), func() { pool.Engine().SetFaultInjector(nil) })
	eng.Run()
	if len(order) != 2 {
		t.Fatalf("%d queued requests completed, want 2", len(order))
	}
	halfOpenAt := des.Time(time.Millisecond + 10*time.Millisecond)
	if order[0] < halfOpenAt {
		t.Fatalf("queued request completed at %v, before the half-open at %v",
			order[0], halfOpenAt)
	}
	st := d.Stats()
	if st.Completed != 2 || st.Failed != 2 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		t.Fatalf("accounting identity broken: %+v", st)
	}
}

// chaosRun drives the full resilience stack — faults on instantiate and
// invoke above the 10% acceptance floor, slow cold starts, retries, breaker,
// timeout, and mid-run memory-pressure drains — and returns everything
// observable.
func chaosRun(t *testing.T) (Report, DispatcherStats, faults.Stats) {
	t.Helper()
	eng := des.NewEngine()
	pool := newTestPoolPolicy(t, engine.Wasmtime, Config{Size: 2, IdleTTL: 2 * time.Second},
		exec.TierPolicy{Mode: exec.TierModeOff})
	// Tiering off: this scenario pins a fixed-seed tier-0 timeline (tier-up
	// would shorten warm invokes, starving the slow-cold-start draws the
	// assertions below require). Tiered serving is covered by the tier tests.
	// Arm after NewPool: pre-warming must succeed, request-path work sees the
	// faults.
	in := faults.New(faults.Config{
		Seed:                42,
		InstantiateFailRate: 0.15,
		TrapRate:            0.12,
		SlowColdRate:        0.3,
		SlowColdFactor:      4,
		PressureAt:          []time.Duration{300 * time.Millisecond, 700 * time.Millisecond},
	})
	pool.Engine().SetFaultInjector(in)
	in.ArmPressure(eng, func() { pool.DrainIdle(eng.Now()) })
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 2, QueueDepth: 16, Policy: PolicyQueue,
		QueueDeadline: time.Second, Export: "handle", Arg: 200,
		MaxRetries: 2, RetryBackoff: time.Millisecond, RetryBackoffCap: 4 * time.Millisecond,
		RequestTimeout:   250 * time.Millisecond,
		BreakerThreshold: 5, BreakerCooldown: 20 * time.Millisecond,
	})
	rep := Run(eng, d, LoadConfig{RatePerSec: 120, Duration: time.Second, Seed: 42})
	if d.InFlight() != 0 || d.QueueLen() != 0 {
		t.Fatalf("stalled requests: inflight=%d queue=%d", d.InFlight(), d.QueueLen())
	}
	return rep, d.Stats(), in.Stats()
}

// TestChaosDeterminismAndAccounting is the acceptance scenario: a fixed-seed
// chaos run (instantiate + invoke fault rates above 10%) finishes with zero
// stalled requests, the accounting identity holds exactly, and a second run
// with the same seed reproduces every counter bit-for-bit.
func TestChaosDeterminismAndAccounting(t *testing.T) {
	rep, st, fs := chaosRun(t)
	if st.Submitted == 0 || st.Submitted != int64(rep.Offered) {
		t.Fatalf("submitted %d != offered %d", st.Submitted, rep.Offered)
	}
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		t.Fatalf("accounting identity broken: %+v", st)
	}
	// The chaos must actually bite, and the resilience layer must actually
	// work: injected faults fire, retries recover some of them.
	if fs.InstantiateFailures == 0 || fs.Traps == 0 || fs.SlowColdStarts == 0 {
		t.Fatalf("faults did not fire: %+v", fs)
	}
	if st.Retries == 0 || st.Completed == 0 {
		t.Fatalf("resilience layer inert: %+v", st)
	}
	if fs.PressureEvents != 2 {
		t.Fatalf("pressure events = %d, want 2", fs.PressureEvents)
	}

	rep2, st2, fs2 := chaosRun(t)
	if st != st2 || fs != fs2 {
		t.Fatalf("same seed, different counters:\n%+v\n%+v\nfaults:\n%+v\n%+v", st, st2, fs, fs2)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatalf("same seed, different reports:\n%+v\n%+v", rep, rep2)
	}
}

// TestChaosObserversRaceFree runs the chaos scenario while 8 goroutines
// hammer every cross-goroutine read surface — dispatcher stats and breaker
// state, pool stats, injector stats. Only meaningful under -race; it asserts
// the observer contract, not determinism (which is single-goroutine).
func TestChaosObserversRaceFree(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.Wasmtime, Config{Size: 2})
	in := faults.New(faults.Config{Seed: 9, InstantiateFailRate: 0.2, TrapRate: 0.2})
	pool.Engine().SetFaultInjector(in)
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 2, QueueDepth: 16, Policy: PolicyQueue,
		QueueDeadline: time.Second, Export: "handle", Arg: 100,
		MaxRetries: 2, RetryBackoff: time.Millisecond,
		BreakerThreshold: 4, BreakerCooldown: 10 * time.Millisecond,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = d.Stats()
					_ = d.QueueLen()
					_ = d.InFlight()
					_ = d.BreakerState()
					_ = pool.Stats()
					_ = pool.MemoryBytes()
					_ = in.Stats()
					runtime.Gosched()
				}
			}
		}()
	}
	Run(eng, d, LoadConfig{RatePerSec: 150, Duration: 500 * time.Millisecond, Seed: 11})
	close(stop)
	wg.Wait()
	st := d.Stats()
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		t.Fatalf("accounting identity broken under observers: %+v", st)
	}
}

package serve

import (
	"reflect"
	"testing"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/wasm/exec"
	"wasmcontainers/internal/workloads"
)

// newTestPool builds a pool over the request-handler workload.
func newTestPool(t *testing.T, p engine.Profile, cfg Config) *Pool {
	t.Helper()
	return newTestPoolPolicy(t, p, cfg, exec.DefaultTierPolicy())
}

// newTestPoolPolicy is newTestPool with an explicit tier policy installed
// before compiling.
func newTestPoolPolicy(t *testing.T, p engine.Profile, cfg Config, tp exec.TierPolicy) *Pool {
	t.Helper()
	eng := engine.New(p)
	eng.SetTierPolicy(tp)
	bin, err := workloads.Binary("request-handler")
	if err != nil {
		t.Fatal(err)
	}
	cm, err := eng.Compile(bin)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(eng, cm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestPoolWarmReuseResetsMemory(t *testing.T) {
	pool := newTestPool(t, engine.WAMR, Config{Size: 2})
	if pool.Idle() != 2 {
		t.Fatalf("idle = %d, want 2", pool.Idle())
	}
	// Ten sequential requests through the same pool: the handler's request
	// counter must read 1 every time — any cross-request bleed makes it climb.
	for i := 0; i < 10; i++ {
		wi, ok := pool.Acquire(0)
		if !ok {
			t.Fatalf("request %d: pool dry", i)
		}
		res, err := wi.Invoke("handle", exec.I32(16))
		if err != nil {
			t.Fatal(err)
		}
		if got := exec.AsI32(res.Values[0]); got != 1 {
			t.Fatalf("request %d: counter = %d, state bled across requests", i, got)
		}
		pool.Release(wi, 0)
	}
	st := pool.Stats()
	if st.WarmHits != 10 || st.Recycled != 10 || st.ColdStarts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolSizeZeroAlwaysCold(t *testing.T) {
	pool := newTestPool(t, engine.WAMR, Config{Size: 0})
	if _, ok := pool.Acquire(0); ok {
		t.Fatal("size-0 pool handed out a warm instance")
	}
	wi, err := pool.ColdStart()
	if err != nil {
		t.Fatal(err)
	}
	if !wi.Cold() {
		t.Fatal("cold-start instance not marked cold")
	}
	pool.Release(wi, 0)
	// Size-0 pools never retain released instances.
	if pool.Idle() != 0 {
		t.Fatalf("idle = %d after release into size-0 pool", pool.Idle())
	}
	// Only the shared artifacts remain accounted: the compiled code plus the
	// baseline image the cold start captured.
	if want := pool.SharedCodeBytes() + pool.SharedBaselineBytes(); pool.MemoryBytes() != want {
		t.Fatalf("memory = %d after discard, want shared artifacts %d",
			pool.MemoryBytes(), want)
	}
	if pool.SharedBaselineBytes() == 0 {
		t.Fatal("cold start did not capture a shared baseline image")
	}
	st := pool.Stats()
	if st.ColdStarts != 1 || st.Discarded != 1 || st.Recycled != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolMemoryAccounting(t *testing.T) {
	pool := newTestPool(t, engine.Wasmtime, Config{Size: 3})
	// Copy-on-write accounting: an idle instance costs only its engine-side
	// state — its whole linear memory aliases the shared baseline image,
	// charged once alongside the compiled code.
	per := engine.Wasmtime.WarmInstanceBytes
	if got := pool.SharedBaselineBytes(); got != 64*1024 {
		t.Fatalf("shared baseline = %d, want one 64 KiB page", got)
	}
	shared := pool.SharedCodeBytes() + pool.SharedBaselineBytes() // charged exactly once
	if got := pool.MemoryBytes(); got != shared+3*per {
		t.Fatalf("pool memory = %d, want %d", got, shared+3*per)
	}
	var seen int64 = -1
	pool.SetMemoryListener(func(b int64) { seen = b })
	if seen != shared+3*per {
		t.Fatalf("listener saw %d on registration, want %d", seen, shared+3*per)
	}
	// A cold start adds a fourth instance; discarding it (pool already full
	// after re-filling) returns to the steady state.
	wi, err := pool.ColdStart()
	if err != nil {
		t.Fatal(err)
	}
	if seen != shared+4*per {
		t.Fatalf("listener saw %d after cold start, want %d", seen, shared+4*per)
	}
	pool.Release(wi, 0) // idle=3 < Size? idle is 3 already -> discarded
	if seen != shared+3*per {
		t.Fatalf("listener saw %d after discard, want %d", seen, shared+3*per)
	}
	if pool.HighWater() != shared+4*per {
		t.Fatalf("high water = %d, want %d", pool.HighWater(), shared+4*per)
	}
}

func TestPoolIdleTTLEviction(t *testing.T) {
	pool := newTestPool(t, engine.WAMR, Config{Size: 2, IdleTTL: time.Second})
	// Instances start with lastUsed = 0; at t=2s they are both stale.
	if n := pool.EvictIdle(des.Time(2 * time.Second)); n != 2 {
		t.Fatalf("evicted %d, want 2", n)
	}
	if shared := pool.SharedCodeBytes() + pool.SharedBaselineBytes(); pool.Idle() != 0 || pool.MemoryBytes() != shared {
		t.Fatalf("idle=%d mem=%d after eviction, want shared artifacts %d",
			pool.Idle(), pool.MemoryBytes(), shared)
	}
	if st := pool.Stats(); st.Evicted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// A recycled instance released at t=3s survives a sweep at t=3.5s.
	wi, err := pool.ColdStart()
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(wi, des.Time(3*time.Second))
	if n := pool.EvictIdle(des.Time(3*time.Second + 500*time.Millisecond)); n != 0 {
		t.Fatalf("fresh instance evicted")
	}
	if pool.Idle() != 1 {
		t.Fatalf("idle = %d", pool.Idle())
	}
}

func TestDispatcherRejectPolicy(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, Policy: PolicyReject, Export: "handle", Arg: 16,
	})
	var rejected, completed int
	for i := 0; i < 3; i++ {
		d.Submit(func(r RequestResult) {
			if r.Admitted {
				completed++
			} else {
				rejected++
			}
		})
	}
	eng.Run()
	// All three arrive at t=0: one admitted, two rejected on the spot.
	if completed != 1 || rejected != 2 {
		t.Fatalf("completed=%d rejected=%d", completed, rejected)
	}
	st := d.Stats()
	if st.Submitted != 3 || st.Completed != 1 || st.Rejected != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDispatcherQueuePolicy(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, QueueDepth: 2, Policy: PolicyQueue,
		QueueDeadline: time.Minute, Export: "handle", Arg: 16,
	})
	var results []RequestResult
	for i := 0; i < 4; i++ {
		d.Submit(func(r RequestResult) { results = append(results, r) })
	}
	// Queue depth 2: request 4 is rejected immediately, 2 and 3 queue.
	if d.QueueLen() != 2 {
		t.Fatalf("queue length = %d", d.QueueLen())
	}
	eng.Run()
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	st := d.Stats()
	if st.Completed != 3 || st.Rejected != 1 || st.Expired != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Queued requests waited behind the first; their wait shows in latency.
	var waited int
	for _, r := range results {
		if r.Admitted && r.QueueWait > 0 {
			waited++
		}
	}
	if waited != 2 {
		t.Fatalf("%d requests record queue wait, want 2", waited)
	}
}

func TestDispatcherQueueDeadlineExpiry(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	// WAMR warm handle(500) costs ~4 ms simulated; a 1 µs deadline expires
	// anything that had to queue at all.
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, QueueDepth: 8, Policy: PolicyQueue,
		QueueDeadline: time.Microsecond, Export: "handle", Arg: 500,
	})
	var expired int
	for i := 0; i < 3; i++ {
		d.Submit(func(r RequestResult) {
			if !r.Admitted {
				expired++
			}
		})
	}
	eng.Run()
	if st := d.Stats(); st.Completed != 1 || st.Expired != 2 || expired != 2 {
		t.Fatalf("stats = %+v (expired callbacks: %d)", st, expired)
	}
}

func TestDispatcherColdFallbackWhenPoolDry(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WAMR, Config{Size: 0})
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 4, Policy: PolicyReject, Export: "handle", Arg: 16,
	})
	var cold int
	d.Submit(func(r RequestResult) {
		if r.Cold {
			cold++
		}
	})
	eng.Run()
	if cold != 1 {
		t.Fatal("dry pool did not fall back to cold start")
	}
	if st := pool.Stats(); st.ColdStarts != 1 {
		t.Fatalf("pool stats = %+v", st)
	}
}

func TestWarmLatencyBeatsColdByTenX(t *testing.T) {
	for _, p := range engine.Profiles() {
		warm := measureOne(t, p, 4)
		cold := measureOne(t, p, 0)
		if warm.WarmLatency.N == 0 || cold.ColdLatency.N == 0 {
			t.Fatalf("%s: no samples (warm n=%d cold n=%d)", p.Name, warm.WarmLatency.N, cold.ColdLatency.N)
		}
		if warm.WarmLatency.P50*10 > cold.ColdLatency.P50 {
			t.Errorf("%s: warm p50 %.6fs not 10x under cold p50 %.6fs",
				p.Name, warm.WarmLatency.P50, cold.ColdLatency.P50)
		}
	}
}

func measureOne(t *testing.T, p engine.Profile, size int) Report {
	t.Helper()
	eng := des.NewEngine()
	pool := newTestPool(t, p, Config{Size: size})
	conc := size
	if conc == 0 {
		conc = 4
	}
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: conc, QueueDepth: 64, Policy: PolicyQueue,
		QueueDeadline: 10 * time.Second, Export: "handle", Arg: 500,
	})
	return Run(eng, d, LoadConfig{RatePerSec: 50, Duration: time.Second, Seed: 7})
}

func TestLoadRunDeterminism(t *testing.T) {
	run := func() Report {
		eng := des.NewEngine()
		pool := newTestPool(t, engine.Wasmtime, Config{Size: 2, IdleTTL: 2 * time.Second})
		d := NewDispatcher(eng, pool, DispatcherConfig{
			MaxConcurrency: 2, QueueDepth: 16, Policy: PolicyQueue,
			QueueDeadline: time.Second, Export: "handle", Arg: 200,
		})
		return Run(eng, d, LoadConfig{RatePerSec: 120, Duration: time.Second, Seed: 42})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic load run:\n%+v\n%+v", a, b)
	}
	if a.Offered == 0 || a.Dispatcher.Completed == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
}

func TestRunReportsPoolHighWater(t *testing.T) {
	eng := des.NewEngine()
	pool := newTestPool(t, engine.WasmEdge, Config{Size: 2})
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 2, QueueDepth: 8, Policy: PolicyQueue,
		QueueDeadline: time.Second, Export: "handle", Arg: 100,
	})
	rep := Run(eng, d, LoadConfig{RatePerSec: 100, Duration: 500 * time.Millisecond, Seed: 3})
	// Steady state: shared code + shared baseline + two idle instances at
	// engine-state cost. Requests dirty pages on top, so the high-water mark
	// must clear the steady state by at least one privatized page.
	steady := pool.SharedCodeBytes() + pool.SharedBaselineBytes() +
		2*engine.WasmEdge.WarmInstanceBytes
	if rep.PoolHighWaterBytes < steady+64*1024 {
		t.Fatalf("high water %d below steady-state-plus-dirty-page %d",
			rep.PoolHighWaterBytes, steady+64*1024)
	}
}

package serve

import (
	"errors"
	"testing"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
)

// TestDrainingRejectsNewWork: once SetDraining flips, every Submit is
// refused with ErrDraining and counted as rejected — nothing enters the
// queue or the pool.
func TestDrainingRejectsNewWork(t *testing.T) {
	pool := newTestPool(t, engine.WAMR, Config{Size: 2})
	eng := des.NewEngine()
	d := NewDispatcher(eng, pool, DispatcherConfig{MaxConcurrency: 2, Export: "handle"})

	d.SetDraining(true)
	if !d.Draining() {
		t.Fatal("Draining() = false after SetDraining(true)")
	}
	var got error
	d.Submit(func(r RequestResult) { got = r.Err })
	if !errors.Is(got, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", got)
	}
	eng.Run()
	st := d.Stats()
	if st.Submitted != 1 || st.Rejected != 1 || st.Completed != 0 {
		t.Fatalf("stats = %+v, want 1 submitted, 1 rejected", st)
	}
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		t.Fatalf("identity broken: %+v", st)
	}
}

// TestDrainFlushesInFlight: requests admitted before the drain flag flips
// still run to completion; the flag only gates new admissions.
func TestDrainFlushesInFlight(t *testing.T) {
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	eng := des.NewEngine()
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, QueueDepth: 4, Policy: PolicyQueue, Export: "handle",
	})

	var completed int
	for i := 0; i < 3; i++ {
		d.Submit(func(r RequestResult) {
			if r.Err == nil {
				completed++
			}
		})
	}
	d.SetDraining(true)
	var late error
	d.Submit(func(r RequestResult) { late = r.Err })
	eng.Run()

	if completed != 3 {
		t.Fatalf("completed = %d, want 3 (admitted work must flush)", completed)
	}
	if !errors.Is(late, ErrDraining) {
		t.Fatalf("late err = %v, want ErrDraining", late)
	}
	st := d.Stats()
	if st.Submitted != st.Completed+st.Rejected+st.Expired+st.Failed {
		t.Fatalf("identity broken: %+v", st)
	}
}

// TestQuiesceHook: the hook fires exactly when in-flight and queued work
// both reach zero, and Quiesced() agrees.
func TestQuiesceHook(t *testing.T) {
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	eng := des.NewEngine()
	d := NewDispatcher(eng, pool, DispatcherConfig{
		MaxConcurrency: 1, QueueDepth: 4, Policy: PolicyQueue, Export: "handle",
	})

	fired := 0
	d.SetQuiesceHook(func() {
		fired++
		if !d.Quiesced() {
			t.Error("hook fired while not quiesced")
		}
	})
	if !d.Quiesced() {
		t.Fatal("fresh dispatcher should be quiesced")
	}
	for i := 0; i < 3; i++ {
		d.Submit(func(RequestResult) {})
	}
	if d.Quiesced() {
		t.Fatal("quiesced with work in flight")
	}
	eng.Run()
	if !d.Quiesced() {
		t.Fatal("not quiesced after Run")
	}
	if fired == 0 {
		t.Fatal("quiesce hook never fired")
	}
}

// TestSubmitTIDFallback: tid 0 falls back to the internal sequence, so the
// legacy Submit path keeps producing distinct span TIDs.
func TestSubmitTIDFallback(t *testing.T) {
	pool := newTestPool(t, engine.WAMR, Config{Size: 1})
	eng := des.NewEngine()
	d := NewDispatcher(eng, pool, DispatcherConfig{MaxConcurrency: 2, Export: "handle"})

	var errs []error
	d.SubmitTID(0, func(r RequestResult) { errs = append(errs, r.Err) })
	d.SubmitTID(42, func(r RequestResult) { errs = append(errs, r.Err) })
	eng.Run()
	if len(errs) != 2 || errs[0] != nil || errs[1] != nil {
		t.Fatalf("errs = %v, want two nils", errs)
	}
	st := d.Stats()
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
}

package serve

import (
	"sync"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/wasm/exec"
)

// AdmissionPolicy decides what happens to a request that arrives while the
// dispatcher is at its concurrency limit.
type AdmissionPolicy int

const (
	// PolicyReject turns away over-limit requests immediately (the HTTP 503
	// of a real gateway).
	PolicyReject AdmissionPolicy = iota
	// PolicyQueue parks over-limit requests in a bounded FIFO queue; they
	// are rejected only when the queue is full, and expire if they wait past
	// QueueDeadline.
	PolicyQueue
)

// String names the policy for experiment tables.
func (p AdmissionPolicy) String() string {
	if p == PolicyQueue {
		return "queue"
	}
	return "reject"
}

// DispatcherConfig shapes one dispatcher.
type DispatcherConfig struct {
	// MaxConcurrency bounds requests in flight. 0 means 1.
	MaxConcurrency int
	// QueueDepth bounds the wait queue under PolicyQueue.
	QueueDepth int
	// Policy selects the over-limit behaviour.
	Policy AdmissionPolicy
	// QueueDeadline expires queued requests that wait longer than this in
	// simulated time; 0 means no deadline.
	QueueDeadline time.Duration
	// Export is the guest function every request invokes.
	Export string
	// Arg is the argument passed to Export.
	Arg int32
}

// DispatcherStats counts request outcomes.
type DispatcherStats struct {
	// Submitted counts all requests offered to the dispatcher.
	Submitted int64
	// Completed counts requests that ran to completion.
	Completed int64
	// Rejected counts requests turned away at admission (limit reached under
	// PolicyReject, or queue full under PolicyQueue).
	Rejected int64
	// Expired counts queued requests dropped at dispatch time because they
	// waited past QueueDeadline.
	Expired int64
	// Failed counts requests whose guest invocation errored.
	Failed int64
}

// queuedRequest is one request parked behind the concurrency limit.
type queuedRequest struct {
	enqueued des.Time
	done     func(RequestResult)
}

// RequestResult describes one finished (or refused) request.
type RequestResult struct {
	// Admitted is false for rejected or expired requests; the remaining
	// fields are then zero.
	Admitted bool
	// Cold reports whether the request paid a cold-start fallback.
	Cold bool
	// Latency is the simulated end-to-end latency: queue wait + instance
	// acquisition overhead (warm-invoke or cold-start) + guest execution.
	Latency time.Duration
	// QueueWait is the simulated time spent parked in the wait queue.
	QueueWait time.Duration
	// Err is the guest invocation error, if any.
	Err error
}

// Dispatcher routes requests to a warm pool under a concurrency limit with
// bounded queueing. Its semantics are single-threaded: Submit and the DES
// callbacks that complete requests must all run on the one goroutine driving
// the DES engine (des.Engine itself is not safe for concurrent use, so this
// contract is inherited, not new). The mutex below exists only so that
// *observers* on other goroutines — a progress printer, a metrics scraper, a
// -race test — can call Stats, QueueLen, and InFlight while a simulation
// runs and read a consistent snapshot.
type Dispatcher struct {
	eng  *des.Engine
	pool *Pool
	cfg  DispatcherConfig

	// mu guards busy, queue, stats, and reqSeq for cross-goroutine readers;
	// see the type comment. done callbacks and pool calls run outside it.
	mu     sync.Mutex
	busy   int
	queue  []queuedRequest
	stats  DispatcherStats
	reqSeq int64

	// Telemetry handles, nil when observation is disabled (nil handles no-op
	// without allocating; the tracer needs an explicit nil check at span
	// call sites).
	tele           *obs.Telemetry
	obsSubmitted   *obs.Counter
	obsCompleted   *obs.Counter
	obsRejected    *obs.Counter
	obsExpired     *obs.Counter
	obsFailed      *obs.Counter
	obsQueueDepth  *obs.Gauge
	obsInFlight    *obs.Gauge
	obsLatencyNs   *obs.Histogram
	obsQueueWaitNs *obs.Histogram
	obsTracer      *obs.Tracer
}

// NewDispatcher wires a dispatcher to a DES engine and a pool.
func NewDispatcher(eng *des.Engine, pool *Pool, cfg DispatcherConfig) *Dispatcher {
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 1
	}
	return &Dispatcher{eng: eng, pool: pool, cfg: cfg}
}

// SetObserver wires telemetry into the dispatcher: outcome counters,
// queue-depth and in-flight gauges, latency/queue-wait histograms, and the
// per-request lifecycle spans (queue-wait → acquire → invoke) on the
// simulated timeline, one trace track (TID) per request. It also wires the
// pool so the request timeline and the pool's reset spans land in one trace.
// Pass nil to disable (the default); the disabled path costs a nil check per
// event and no allocations.
func (d *Dispatcher) SetObserver(t *obs.Telemetry) {
	d.mu.Lock()
	d.tele = t
	if t == nil {
		d.obsSubmitted, d.obsCompleted, d.obsRejected = nil, nil, nil
		d.obsExpired, d.obsFailed = nil, nil
		d.obsQueueDepth, d.obsInFlight = nil, nil
		d.obsLatencyNs, d.obsQueueWaitNs, d.obsTracer = nil, nil, nil
	} else {
		d.obsSubmitted = t.Counter("dispatch_submitted_total")
		d.obsCompleted = t.Counter("dispatch_completed_total")
		d.obsRejected = t.Counter("dispatch_rejected_total")
		d.obsExpired = t.Counter("dispatch_expired_total")
		d.obsFailed = t.Counter("dispatch_failed_total")
		d.obsQueueDepth = t.Gauge("dispatch_queue_depth")
		d.obsInFlight = t.Gauge("dispatch_in_flight")
		d.obsLatencyNs = t.Histogram("dispatch_latency_ns")
		d.obsQueueWaitNs = t.Histogram("dispatch_queue_wait_ns")
		d.obsTracer = t.Tracer()
	}
	d.mu.Unlock()
	d.pool.SetObserver(t)
}

// Submit offers one request at the current simulated time. done runs exactly
// once — immediately for rejections, at the simulated completion time
// otherwise. done may be nil.
func (d *Dispatcher) Submit(done func(RequestResult)) {
	if done == nil {
		done = func(RequestResult) {}
	}
	d.mu.Lock()
	d.stats.Submitted++
	d.obsSubmitted.Inc()
	if d.busy >= d.cfg.MaxConcurrency {
		if d.cfg.Policy == PolicyQueue && len(d.queue) < d.cfg.QueueDepth {
			d.queue = append(d.queue, queuedRequest{enqueued: d.eng.Now(), done: done})
			d.obsQueueDepth.Set(int64(len(d.queue)))
			d.mu.Unlock()
			return
		}
		d.stats.Rejected++
		d.obsRejected.Inc()
		d.mu.Unlock()
		done(RequestResult{})
		return
	}
	d.mu.Unlock()
	d.start(done, 0)
}

// start runs one admitted request: acquire warm or fall back to cold, invoke
// the guest for real, convert the work to simulated latency, and schedule
// completion. Each request gets its own trace track (TID) so the queue-wait,
// acquire, and invoke phases of concurrent requests render as parallel
// lanes.
func (d *Dispatcher) start(done func(RequestResult), queueWait time.Duration) {
	d.mu.Lock()
	d.busy++
	d.reqSeq++
	seq := d.reqSeq
	d.obsInFlight.Set(int64(d.busy))
	tracer := d.obsTracer
	d.mu.Unlock()
	now := d.eng.Now()
	d.obsQueueWaitNs.Record(int64(queueWait))
	if tracer != nil && queueWait > 0 {
		tracer.Span("queue-wait", "serve", seq, int64(now-des.Time(queueWait)), int64(now))
	}
	wi, warm := d.pool.Acquire(now)
	var overhead time.Duration
	if warm {
		overhead = d.pool.Engine().Profile.WarmInvokeOverhead
	} else {
		var err error
		wi, err = d.pool.ColdStart()
		if err != nil {
			d.mu.Lock()
			d.busy--
			d.stats.Failed++
			d.obsFailed.Inc()
			d.obsInFlight.Set(int64(d.busy))
			d.mu.Unlock()
			done(RequestResult{Admitted: true, Cold: true, Err: err})
			return
		}
		overhead = d.pool.Engine().ColdStartCost()
	}
	coldAttr := int64(0)
	if !warm {
		coldAttr = 1
	}
	acqEnd := int64(now) + int64(overhead)
	if tracer != nil {
		tracer.Span("acquire", "serve", seq, int64(now), acqEnd,
			obs.I64("cold", coldAttr))
	}
	res, err := wi.Invoke(d.cfg.Export, exec.I32(d.cfg.Arg))
	latency := queueWait + overhead
	if err == nil {
		latency += res.SimulatedExecTime
	}
	if tracer != nil {
		tracer.Span("invoke", "serve", seq, acqEnd, acqEnd+int64(res.SimulatedExecTime),
			obs.I64("cold", coldAttr),
			obs.I64("instructions", int64(res.Instructions)))
	}
	cold := !warm
	d.eng.After(overhead+res.SimulatedExecTime, func() {
		d.pool.Release(wi, d.eng.Now())
		d.mu.Lock()
		d.busy--
		if err != nil {
			d.stats.Failed++
			d.obsFailed.Inc()
		} else {
			d.stats.Completed++
			d.obsCompleted.Inc()
		}
		d.obsInFlight.Set(int64(d.busy))
		d.mu.Unlock()
		d.obsLatencyNs.Record(int64(latency))
		done(RequestResult{Admitted: true, Cold: cold, Latency: latency, QueueWait: queueWait, Err: err})
		d.drainQueue()
	})
}

// drainQueue dispatches queued requests into freed capacity, dropping any
// that outlived the deadline while parked.
func (d *Dispatcher) drainQueue() {
	now := d.eng.Now()
	for {
		d.mu.Lock()
		if d.busy >= d.cfg.MaxConcurrency || len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		q := d.queue[0]
		d.queue = d.queue[1:]
		d.obsQueueDepth.Set(int64(len(d.queue)))
		wait := time.Duration(now - q.enqueued)
		if d.cfg.QueueDeadline > 0 && wait > d.cfg.QueueDeadline {
			d.stats.Expired++
			d.obsExpired.Inc()
			d.mu.Unlock()
			q.done(RequestResult{})
			continue
		}
		d.mu.Unlock()
		d.start(q.done, wait)
	}
}

// Pool returns the dispatcher's pool.
func (d *Dispatcher) Pool() *Pool { return d.pool }

// Telemetry returns the telemetry wired by SetObserver, nil when disabled.
// Collaborators (the load generator) resolve their own handles from it; all
// obs accessors are nil-safe, so callers need no nil check of their own.
func (d *Dispatcher) Telemetry() *obs.Telemetry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tele
}

// QueueLen returns the number of requests currently parked. Safe to call
// from observer goroutines while a simulation runs.
func (d *Dispatcher) QueueLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.queue)
}

// InFlight returns the number of requests currently executing. Safe to call
// from observer goroutines while a simulation runs.
func (d *Dispatcher) InFlight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy
}

// Stats returns a snapshot of the outcome counters. Safe to call from
// observer goroutines while a simulation runs; the DES contract (see the
// type comment) keeps the counters themselves single-writer.
func (d *Dispatcher) Stats() DispatcherStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

package serve

import (
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/wasm/exec"
)

// AdmissionPolicy decides what happens to a request that arrives while the
// dispatcher is at its concurrency limit.
type AdmissionPolicy int

const (
	// PolicyReject turns away over-limit requests immediately (the HTTP 503
	// of a real gateway).
	PolicyReject AdmissionPolicy = iota
	// PolicyQueue parks over-limit requests in a bounded FIFO queue; they
	// are rejected only when the queue is full, and expire if they wait past
	// QueueDeadline.
	PolicyQueue
)

// String names the policy for experiment tables.
func (p AdmissionPolicy) String() string {
	if p == PolicyQueue {
		return "queue"
	}
	return "reject"
}

// DispatcherConfig shapes one dispatcher.
type DispatcherConfig struct {
	// MaxConcurrency bounds requests in flight. 0 means 1.
	MaxConcurrency int
	// QueueDepth bounds the wait queue under PolicyQueue.
	QueueDepth int
	// Policy selects the over-limit behaviour.
	Policy AdmissionPolicy
	// QueueDeadline expires queued requests that wait longer than this in
	// simulated time; 0 means no deadline.
	QueueDeadline time.Duration
	// Export is the guest function every request invokes.
	Export string
	// Arg is the argument passed to Export.
	Arg int32
}

// DispatcherStats counts request outcomes.
type DispatcherStats struct {
	// Submitted counts all requests offered to the dispatcher.
	Submitted int64
	// Completed counts requests that ran to completion.
	Completed int64
	// Rejected counts requests turned away at admission (limit reached under
	// PolicyReject, or queue full under PolicyQueue).
	Rejected int64
	// Expired counts queued requests dropped at dispatch time because they
	// waited past QueueDeadline.
	Expired int64
	// Failed counts requests whose guest invocation errored.
	Failed int64
}

// queuedRequest is one request parked behind the concurrency limit.
type queuedRequest struct {
	enqueued des.Time
	done     func(RequestResult)
}

// RequestResult describes one finished (or refused) request.
type RequestResult struct {
	// Admitted is false for rejected or expired requests; the remaining
	// fields are then zero.
	Admitted bool
	// Cold reports whether the request paid a cold-start fallback.
	Cold bool
	// Latency is the simulated end-to-end latency: queue wait + instance
	// acquisition overhead (warm-invoke or cold-start) + guest execution.
	Latency time.Duration
	// QueueWait is the simulated time spent parked in the wait queue.
	QueueWait time.Duration
	// Err is the guest invocation error, if any.
	Err error
}

// Dispatcher routes requests to a warm pool under a concurrency limit with
// bounded queueing. It is single-threaded and driven by the DES engine: all
// latency is simulated, but each admitted request really executes the guest
// function (on the instance it was handed) to obtain its instruction count.
type Dispatcher struct {
	eng   *des.Engine
	pool  *Pool
	cfg   DispatcherConfig
	busy  int
	queue []queuedRequest
	stats DispatcherStats
}

// NewDispatcher wires a dispatcher to a DES engine and a pool.
func NewDispatcher(eng *des.Engine, pool *Pool, cfg DispatcherConfig) *Dispatcher {
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 1
	}
	return &Dispatcher{eng: eng, pool: pool, cfg: cfg}
}

// Submit offers one request at the current simulated time. done runs exactly
// once — immediately for rejections, at the simulated completion time
// otherwise. done may be nil.
func (d *Dispatcher) Submit(done func(RequestResult)) {
	d.stats.Submitted++
	if done == nil {
		done = func(RequestResult) {}
	}
	if d.busy >= d.cfg.MaxConcurrency {
		if d.cfg.Policy == PolicyQueue && len(d.queue) < d.cfg.QueueDepth {
			d.queue = append(d.queue, queuedRequest{enqueued: d.eng.Now(), done: done})
			return
		}
		d.stats.Rejected++
		done(RequestResult{})
		return
	}
	d.start(done, 0)
}

// start runs one admitted request: acquire warm or fall back to cold, invoke
// the guest for real, convert the work to simulated latency, and schedule
// completion.
func (d *Dispatcher) start(done func(RequestResult), queueWait time.Duration) {
	d.busy++
	now := d.eng.Now()
	wi, warm := d.pool.Acquire(now)
	var overhead time.Duration
	if warm {
		overhead = d.pool.Engine().Profile.WarmInvokeOverhead
	} else {
		var err error
		wi, err = d.pool.ColdStart()
		if err != nil {
			d.busy--
			d.stats.Failed++
			done(RequestResult{Admitted: true, Cold: true, Err: err})
			return
		}
		overhead = d.pool.Engine().ColdStartCost()
	}
	res, err := wi.Invoke(d.cfg.Export, exec.I32(d.cfg.Arg))
	latency := queueWait + overhead
	if err == nil {
		latency += res.SimulatedExecTime
	}
	cold := !warm
	d.eng.After(overhead+res.SimulatedExecTime, func() {
		d.pool.Release(wi, d.eng.Now())
		d.busy--
		if err != nil {
			d.stats.Failed++
		} else {
			d.stats.Completed++
		}
		done(RequestResult{Admitted: true, Cold: cold, Latency: latency, QueueWait: queueWait, Err: err})
		d.drainQueue()
	})
}

// drainQueue dispatches queued requests into freed capacity, dropping any
// that outlived the deadline while parked.
func (d *Dispatcher) drainQueue() {
	now := d.eng.Now()
	for d.busy < d.cfg.MaxConcurrency && len(d.queue) > 0 {
		q := d.queue[0]
		d.queue = d.queue[1:]
		wait := time.Duration(now - q.enqueued)
		if d.cfg.QueueDeadline > 0 && wait > d.cfg.QueueDeadline {
			d.stats.Expired++
			q.done(RequestResult{})
			continue
		}
		d.start(q.done, wait)
	}
}

// Pool returns the dispatcher's pool.
func (d *Dispatcher) Pool() *Pool { return d.pool }

// QueueLen returns the number of requests currently parked.
func (d *Dispatcher) QueueLen() int { return len(d.queue) }

// InFlight returns the number of requests currently executing.
func (d *Dispatcher) InFlight() int { return d.busy }

// Stats returns a snapshot of the outcome counters.
func (d *Dispatcher) Stats() DispatcherStats { return d.stats }

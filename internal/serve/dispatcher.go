package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/wasm/exec"
)

// AdmissionPolicy decides what happens to a request that arrives while the
// dispatcher is at its concurrency limit.
type AdmissionPolicy int

const (
	// PolicyReject turns away over-limit requests immediately (the HTTP 503
	// of a real gateway).
	PolicyReject AdmissionPolicy = iota
	// PolicyQueue parks over-limit requests in a bounded FIFO queue; they
	// are rejected only when the queue is full, and expire if they wait past
	// QueueDeadline.
	PolicyQueue
)

// String names the policy for experiment tables.
func (p AdmissionPolicy) String() string {
	if p == PolicyQueue {
		return "queue"
	}
	return "reject"
}

// ErrRequestTimeout marks a request failed because its retry budget ran past
// DispatcherConfig.RequestTimeout; the wrapped cause is the last attempt's
// error. Detect it with errors.Is.
var ErrRequestTimeout = errors.New("serve: request timeout exceeded")

// Rejection and expiry reasons. Refused requests (RequestResult.Admitted ==
// false) carry one of these in RequestResult.Err so network front ends can
// map each admission outcome to a distinct protocol error (HTTP status,
// Retry-After hint) instead of a bare refusal. All are detectable with
// errors.Is.
var (
	// ErrConcurrencyLimit rejects an over-limit request under PolicyReject.
	ErrConcurrencyLimit = errors.New("serve: concurrency limit reached")
	// ErrQueueFull rejects a request under PolicyQueue when the wait queue
	// is at QueueDepth.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrBreakerOpen rejects a request refused while the circuit breaker
	// denied admission (open, or half-open with its probe outstanding).
	ErrBreakerOpen = errors.New("serve: circuit breaker open")
	// ErrQueueExpired drops a queued request that waited past QueueDeadline.
	ErrQueueExpired = errors.New("serve: queue deadline exceeded")
	// ErrDraining rejects a request submitted after SetDraining(true): the
	// dispatcher is flushing in-flight work ahead of shutdown.
	ErrDraining = errors.New("serve: dispatcher draining")
)

// BreakerState is the position of the dispatcher's per-pool circuit breaker.
type BreakerState int

// Breaker positions, ordered by health: Closed admits everything, HalfOpen
// admits one probe, Open admits nothing.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String names the state for traces and tables.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// DispatcherConfig shapes one dispatcher.
type DispatcherConfig struct {
	// MaxConcurrency bounds requests in flight. 0 means 1.
	MaxConcurrency int
	// QueueDepth bounds the wait queue under PolicyQueue.
	QueueDepth int
	// Policy selects the over-limit behaviour.
	Policy AdmissionPolicy
	// QueueDeadline expires queued requests that wait longer than this in
	// simulated time; 0 means no deadline. Expiry is lazy but admission-safe:
	// dead queue heads are dropped both when capacity frees and before the
	// depth check at admission, so they never cause spurious rejections.
	QueueDeadline time.Duration
	// Export is the guest function every request invokes.
	Export string
	// Arg is the argument passed to Export.
	Arg int32

	// MaxRetries is how many times a failed attempt (cold-start
	// instantiation failure or guest invoke error) is retried before the
	// request is Failed. 0 disables retries. A retrying request keeps its
	// concurrency slot through the backoff, like a held connection.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// subsequent one; 0 means 1ms. Backoff is simulated time, scheduled via
	// des.Engine.After, so retried runs stay deterministic.
	RetryBackoff time.Duration
	// RetryBackoffCap caps the exponential backoff; 0 means uncapped.
	RetryBackoffCap time.Duration
	// RequestTimeout bounds one request's in-dispatcher lifetime from its
	// first attempt across all retries: when the next backoff would end past
	// the deadline the request fails with ErrRequestTimeout instead of
	// retrying. 0 disables. (Queue wait is bounded separately by
	// QueueDeadline.)
	RequestTimeout time.Duration

	// BreakerThreshold opens the per-pool circuit breaker after this many
	// consecutive failed attempts; 0 disables the breaker. While open, new
	// requests are rejected (PolicyReject) or parked (PolicyQueue) instead
	// of dispatched; after BreakerCooldown the breaker half-opens and admits
	// a single probe, closing on its success.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay on the DES clock; 0
	// means 100ms.
	BreakerCooldown time.Duration
}

// DispatcherStats counts request outcomes. The admission identity
// Submitted == Completed + Rejected + Expired + Failed holds exactly once a
// run has drained (every submitted request reaches one terminal counter).
type DispatcherStats struct {
	// Submitted counts all requests offered to the dispatcher.
	Submitted int64
	// Completed counts requests that ran to completion.
	Completed int64
	// Rejected counts requests turned away at admission: limit reached under
	// PolicyReject, queue full under PolicyQueue, or breaker open.
	Rejected int64
	// Expired counts queued requests dropped — at dispatch or admission
	// time — because they waited past QueueDeadline.
	Expired int64
	// Failed counts requests whose every attempt errored (including
	// timeouts); each failed request also consumed the simulated time its
	// attempts occupied a concurrency slot.
	Failed int64

	// Retries counts retry attempts scheduled after failed attempts.
	Retries int64
	// TimedOut counts requests failed by RequestTimeout (a subset of
	// Failed).
	TimedOut int64
	// BreakerOpens counts transitions into the open state.
	BreakerOpens int64
	// BreakerShortCircuits counts rejections issued while the breaker denied
	// admission (a subset of Rejected).
	BreakerShortCircuits int64
}

// queuedRequest is one request parked behind the concurrency limit.
type queuedRequest struct {
	enqueued des.Time
	tid      int64
	done     func(RequestResult)
}

// RequestResult describes one finished (or refused) request.
type RequestResult struct {
	// Admitted is false for rejected or expired requests; Err then carries
	// the refusal reason (ErrConcurrencyLimit, ErrQueueFull, ErrBreakerOpen,
	// ErrQueueExpired, ErrDraining) and the remaining fields are zero.
	Admitted bool
	// Cold reports whether the last attempt paid a cold-start fallback.
	Cold bool
	// Latency is the simulated end-to-end latency: queue wait + retry
	// backoff + per-attempt acquisition overhead (warm-invoke or cold-start)
	// + executed guest time. Failed requests report the full time they
	// occupied a concurrency slot, including partial execution of trapped
	// invokes.
	Latency time.Duration
	// QueueWait is the simulated time spent parked in the wait queue.
	QueueWait time.Duration
	// RetryWait is the simulated time spent in backoff between attempts
	// (included in Latency).
	RetryWait time.Duration
	// Attempts is how many attempts ran; 1 means no retries, 0 means never
	// admitted.
	Attempts int
	// Err is the final attempt's error, if any; wrapped by
	// ErrRequestTimeout when the retry budget ran out of time.
	Err error
	// TraceSampled reports whether the tracer kept this request's span
	// track: true for every request when tracing is on without tail
	// sampling, and only for the interesting ones (error, breaker
	// involvement, latency outlier) with it. Always false with tracing off.
	TraceSampled bool
}

// inflight tracks one admitted request across its attempts. It is touched
// only from DES callbacks (single goroutine), never concurrently.
type inflight struct {
	tid       int64
	done      func(RequestResult)
	queueWait time.Duration
	retryWait time.Duration
	attempts  int
	started   des.Time
	deadline  des.Time // 0 = no timeout
	timedOut  bool
	cold      bool
}

// Dispatcher routes requests to a warm pool under a concurrency limit with
// bounded queueing, capped-exponential retries, per-request timeouts, and a
// per-pool circuit breaker. Its semantics are single-threaded: Submit and
// the DES callbacks that complete requests must all run on the one goroutine
// driving the DES engine (des.Engine itself is not safe for concurrent use,
// so this contract is inherited, not new). The mutex below guards the
// mutable dispatch state; *observers* on other goroutines — a progress
// printer, a metrics scraper, the gateway's per-request access log — read
// the atomic mirrors (stats counters, queue length, in-flight count,
// breaker position) and never contend with the dispatch path at all.
type Dispatcher struct {
	eng  *des.Engine
	pool *Pool
	cfg  DispatcherConfig

	// mu guards busy, queue, reqSeq, and the breaker fields on the dispatch
	// path. done callbacks and pool calls run outside it. Observers do not
	// take it: every value they read has an atomic mirror below.
	mu     sync.Mutex
	busy   int
	queue  []queuedRequest
	reqSeq int64

	// stats counters are written with atomic adds (always under mu, so the
	// single-writer DES ordering is preserved) and read lock-free by Stats.
	stats DispatcherStats

	// Lock-free observer mirrors: queue length, in-flight count, and breaker
	// position are mirrored here at every mutation so QueueLen, InFlight,
	// BreakerState, and Quiesced are cheap atomic reads — the gateway calls
	// them per request, and taking mu there would serialize introspection
	// against a burst mid-dispatch.
	qlenA atomic.Int64
	busyA atomic.Int64
	brkA  atomic.Int64

	// draining rejects new submissions with ErrDraining while in-flight and
	// queued work flushes; quiesceHook (if set) runs on the DES goroutine
	// each time a settled request leaves the dispatcher quiescent. Both are
	// the gateway's graceful-shutdown hooks.
	draining    atomic.Bool
	quiesceHook func()

	// Circuit breaker state (single-writer under the DES contract). brkGen
	// invalidates stale half-open timers when the breaker re-opens.
	brk      BreakerState
	brkFails int
	brkProbe bool
	brkGen   uint64

	// Telemetry handles, nil when observation is disabled (nil handles no-op
	// without allocating; the tracer needs an explicit nil check at span
	// call sites).
	tele            *obs.Telemetry
	obsSubmitted    *obs.Counter
	obsCompleted    *obs.Counter
	obsRejected     *obs.Counter
	obsExpired      *obs.Counter
	obsFailed       *obs.Counter
	obsRetries      *obs.Counter
	obsTimedOut     *obs.Counter
	obsShortCircuit *obs.Counter
	obsBreakerTrans *obs.Counter
	obsBreakerState *obs.Gauge
	obsQueueDepth   *obs.Gauge
	obsInFlight     *obs.Gauge
	obsLatencyNs    *obs.Histogram
	obsQueueWaitNs  *obs.Histogram
	obsTracer       *obs.Tracer
}

// NewDispatcher wires a dispatcher to a DES engine and a pool.
func NewDispatcher(eng *des.Engine, pool *Pool, cfg DispatcherConfig) *Dispatcher {
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 1
	}
	return &Dispatcher{eng: eng, pool: pool, cfg: cfg}
}

// SetObserver wires telemetry into the dispatcher: outcome counters,
// queue-depth/in-flight/breaker gauges, latency/queue-wait histograms, and
// the per-request lifecycle spans (queue-wait → acquire → invoke, plus
// retry-wait and breaker transitions) on the simulated timeline, one trace
// track (TID) per request. It also wires the pool so the request timeline
// and the pool's reset spans land in one trace. Pass nil to disable (the
// default); the disabled path costs a nil check per event and no
// allocations.
func (d *Dispatcher) SetObserver(t *obs.Telemetry) {
	d.mu.Lock()
	d.tele = t
	if t == nil {
		d.obsSubmitted, d.obsCompleted, d.obsRejected = nil, nil, nil
		d.obsExpired, d.obsFailed = nil, nil
		d.obsRetries, d.obsTimedOut, d.obsShortCircuit = nil, nil, nil
		d.obsBreakerTrans, d.obsBreakerState = nil, nil
		d.obsQueueDepth, d.obsInFlight = nil, nil
		d.obsLatencyNs, d.obsQueueWaitNs, d.obsTracer = nil, nil, nil
	} else {
		d.obsSubmitted = t.Counter("dispatch_submitted_total")
		d.obsCompleted = t.Counter("dispatch_completed_total")
		d.obsRejected = t.Counter("dispatch_rejected_total")
		d.obsExpired = t.Counter("dispatch_expired_total")
		d.obsFailed = t.Counter("dispatch_failed_total")
		d.obsRetries = t.Counter("dispatch_retries_total")
		d.obsTimedOut = t.Counter("dispatch_timeouts_total")
		d.obsShortCircuit = t.Counter("dispatch_breaker_short_circuits_total")
		d.obsBreakerTrans = t.Counter("dispatch_breaker_transitions_total")
		d.obsBreakerState = t.Gauge("dispatch_breaker_state")
		d.obsQueueDepth = t.Gauge("dispatch_queue_depth")
		d.obsInFlight = t.Gauge("dispatch_in_flight")
		d.obsLatencyNs = t.Histogram("dispatch_latency_ns")
		d.obsQueueWaitNs = t.Histogram("dispatch_queue_wait_ns")
		d.obsTracer = t.Tracer()
		d.obsBreakerState.Set(int64(d.brk))
	}
	d.mu.Unlock()
	d.pool.SetObserver(t)
}

// Submit offers one request at the current simulated time. done runs exactly
// once — immediately for rejections, at the simulated completion time
// otherwise. done may be nil.
func (d *Dispatcher) Submit(done func(RequestResult)) { d.SubmitTID(0, done) }

// SubmitTID is Submit with an explicit trace track: spans of this request
// carry tid instead of the dispatcher's own sequence number, so a front end
// that assigns request IDs (the gateway's X-Request-Id) can correlate its
// access log with the Chrome trace. tid 0 keeps the internal sequence.
func (d *Dispatcher) SubmitTID(tid int64, done func(RequestResult)) {
	if done == nil {
		done = func(RequestResult) {}
	}
	now := d.eng.Now()
	d.mu.Lock()
	atomic.AddInt64(&d.stats.Submitted, 1)
	d.obsSubmitted.Inc()
	if d.draining.Load() {
		atomic.AddInt64(&d.stats.Rejected, 1)
		d.obsRejected.Inc()
		d.mu.Unlock()
		done(RequestResult{Err: ErrDraining})
		return
	}
	// Lazy expiry at admission: drop dead queue heads before the depth
	// check, so requests that already outlived QueueDeadline never hold a
	// QueueDepth slot against fresh arrivals.
	dead := d.expireHeadsLocked(now)
	// Dispatch immediately only with free capacity, a willing breaker, and
	// an empty queue (earlier arrivals keep FIFO priority).
	if d.busy >= d.cfg.MaxConcurrency || !d.breakerReadyLocked() || len(d.queue) > 0 {
		if d.cfg.Policy == PolicyQueue && len(d.queue) < d.cfg.QueueDepth {
			d.queue = append(d.queue, queuedRequest{enqueued: now, tid: tid, done: done})
			d.syncQueueLocked()
			d.mu.Unlock()
			finishAll(dead)
			return
		}
		atomic.AddInt64(&d.stats.Rejected, 1)
		d.obsRejected.Inc()
		reason := ErrConcurrencyLimit
		if d.cfg.Policy == PolicyQueue {
			reason = ErrQueueFull
		}
		if !d.breakerReadyLocked() {
			reason = ErrBreakerOpen
			atomic.AddInt64(&d.stats.BreakerShortCircuits, 1)
			d.obsShortCircuit.Inc()
		}
		d.mu.Unlock()
		finishAll(dead)
		done(RequestResult{Err: reason})
		d.notifyQuiesced()
		return
	}
	d.markProbeLocked()
	d.mu.Unlock()
	finishAll(dead)
	d.start(done, 0, tid)
}

// BatchItem is one request of a coalesced batch submission.
type BatchItem struct {
	// TID is the request's trace track; 0 keeps the internal sequence.
	TID int64
	// Done runs exactly once with the request's final outcome; may be nil.
	Done func(RequestResult)
}

// SubmitBatch offers a batch of requests at the current simulated time, in
// order, with the per-batch work amortized: the dispatcher lock is taken
// once, the queue-deadline sweep runs once, and the submitted/queue-depth/
// in-flight telemetry is recorded once for the whole batch instead of once
// per request. Outcomes are the same as submitting the items one at a time
// at the same instant, with one defined difference: admission decisions for
// the whole batch are made before any attempt runs, so a synchronous
// attempt failure (a cold-start fault opening the breaker) affects the next
// batch, not later items of the same one. The router uses this to admit all
// submissions that arrived within one DES event in a single pass.
func (d *Dispatcher) SubmitBatch(items []BatchItem) {
	if len(items) == 0 {
		return
	}
	now := d.eng.Now()
	type admit struct {
		done func(RequestResult)
		tid  int64
	}
	type refusal struct {
		done   func(RequestResult)
		reason error
	}
	var starts []admit
	var refused []refusal
	d.mu.Lock()
	atomic.AddInt64(&d.stats.Submitted, int64(len(items)))
	d.obsSubmitted.Add(int64(len(items)))
	if d.draining.Load() {
		atomic.AddInt64(&d.stats.Rejected, int64(len(items)))
		d.obsRejected.Add(int64(len(items)))
		d.mu.Unlock()
		for _, it := range items {
			if it.Done != nil {
				it.Done(RequestResult{Err: ErrDraining})
			}
		}
		return
	}
	// One expiry sweep covers the whole batch: every item shares now, and
	// expiry compares strictly against it, so per-item sweeps would be
	// no-ops after the first anyway.
	dead := d.expireHeadsLocked(now)
	for _, it := range items {
		done := it.Done
		if done == nil {
			done = func(RequestResult) {}
		}
		if d.busy >= d.cfg.MaxConcurrency || !d.breakerReadyLocked() || len(d.queue) > 0 {
			if d.cfg.Policy == PolicyQueue && len(d.queue) < d.cfg.QueueDepth {
				d.queue = append(d.queue, queuedRequest{enqueued: now, tid: it.TID, done: done})
				continue
			}
			reason := ErrConcurrencyLimit
			if d.cfg.Policy == PolicyQueue {
				reason = ErrQueueFull
			}
			if !d.breakerReadyLocked() {
				reason = ErrBreakerOpen
				atomic.AddInt64(&d.stats.BreakerShortCircuits, 1)
				d.obsShortCircuit.Inc()
			}
			atomic.AddInt64(&d.stats.Rejected, 1)
			d.obsRejected.Inc()
			refused = append(refused, refusal{done: done, reason: reason})
			continue
		}
		d.markProbeLocked()
		// Pre-claim the slot so in-batch admission decisions see it exactly
		// as sequential submissions at the same instant would.
		d.busy++
		d.reqSeq++
		tid := it.TID
		if tid == 0 {
			tid = d.reqSeq
		}
		starts = append(starts, admit{done: done, tid: tid})
	}
	d.syncQueueLocked()
	d.busyA.Store(int64(d.busy))
	d.obsInFlight.Set(int64(d.busy))
	d.mu.Unlock()
	finishAll(dead)
	for _, rf := range refused {
		rf.done(RequestResult{Err: rf.reason})
	}
	for _, a := range starts {
		d.run(a.done, 0, a.tid)
	}
	if len(refused) > 0 && len(starts) == 0 {
		d.notifyQuiesced()
	}
}

// expireHeadsLocked pops queued requests that outlived QueueDeadline by now
// and returns their callbacks for the caller to run outside the lock.
func (d *Dispatcher) expireHeadsLocked(now des.Time) []func(RequestResult) {
	if d.cfg.QueueDeadline <= 0 {
		return nil
	}
	var dead []func(RequestResult)
	for len(d.queue) > 0 && time.Duration(now-d.queue[0].enqueued) > d.cfg.QueueDeadline {
		dead = append(dead, d.queue[0].done)
		d.queue = d.queue[1:]
		atomic.AddInt64(&d.stats.Expired, 1)
		d.obsExpired.Inc()
	}
	if len(dead) > 0 {
		d.syncQueueLocked()
	}
	return dead
}

// syncQueueLocked mirrors the queue length into the lock-free observer
// mirror and the queue-depth gauge after a queue mutation.
func (d *Dispatcher) syncQueueLocked() {
	n := int64(len(d.queue))
	d.qlenA.Store(n)
	d.obsQueueDepth.Set(n)
}

// finishAll invokes expired-request callbacks (outside the dispatcher lock).
func finishAll(dead []func(RequestResult)) {
	for _, done := range dead {
		done(RequestResult{Err: ErrQueueExpired})
	}
}

// start admits one request: it claims a concurrency slot and a trace track
// (TID), then runs the first attempt. The slot is held until the request's
// final outcome — across retries and their backoffs — so MaxConcurrency
// bounds true in-flight work.
func (d *Dispatcher) start(done func(RequestResult), queueWait time.Duration, tid int64) {
	d.mu.Lock()
	d.busy++
	d.reqSeq++
	if tid == 0 {
		tid = d.reqSeq
	}
	d.busyA.Store(int64(d.busy))
	d.obsInFlight.Set(int64(d.busy))
	d.mu.Unlock()
	d.run(done, queueWait, tid)
}

// run launches the first attempt of an already-admitted request (slot
// claimed, TID assigned). SubmitBatch pre-claims slots for a whole batch
// under one lock and then calls run per item.
func (d *Dispatcher) run(done func(RequestResult), queueWait time.Duration, tid int64) {
	d.mu.Lock()
	tracer := d.obsTracer
	d.mu.Unlock()
	now := d.eng.Now()
	d.obsQueueWaitNs.Record(int64(queueWait))
	if tracer != nil && queueWait > 0 {
		tracer.Span("queue-wait", "serve", tid, int64(now-des.Time(queueWait)), int64(now))
	}
	r := &inflight{tid: tid, done: done, queueWait: queueWait, started: now}
	if d.cfg.RequestTimeout > 0 {
		r.deadline = now + des.Time(d.cfg.RequestTimeout)
	}
	d.attempt(r)
}

// attempt runs one try of an admitted request: acquire warm or fall back to
// cold, invoke the guest for real, convert the work to simulated latency,
// and schedule completion. Failed attempts feed the breaker and may schedule
// a retry; the final outcome always goes through finish, which releases the
// slot and drains the queue.
func (d *Dispatcher) attempt(r *inflight) {
	d.mu.Lock()
	tracer := d.obsTracer
	d.mu.Unlock()
	now := d.eng.Now()
	r.attempts++
	wi, warm := d.pool.Acquire(now)
	var overhead time.Duration
	if warm {
		overhead = d.pool.Engine().Profile.WarmInvokeOverhead
	} else {
		var err error
		wi, err = d.pool.ColdStart()
		if err != nil {
			// Cold-start instantiation failed (for real or injected). The
			// slot stays held through any backoff; win or lose, the request
			// reaches finish, which drains the queue — this path used to
			// return without draining and strand queued requests.
			d.noteFailure()
			if d.scheduleRetry(r, err) {
				return
			}
			d.finish(r, err)
			return
		}
		overhead = d.pool.Engine().ColdStartCost()
	}
	r.cold = !warm
	coldAttr := int64(0)
	if !warm {
		coldAttr = 1
	}
	acqEnd := int64(now) + int64(overhead)
	if tracer != nil {
		tracer.Span("acquire", "serve", r.tid, int64(now), acqEnd,
			obs.I64("cold", coldAttr))
	}
	res, err := wi.Invoke(d.cfg.Export, exec.I32(d.cfg.Arg))
	// The slot is occupied for overhead plus the instructions that actually
	// executed — also when the invoke trapped: res carries the partial
	// execution, so the invoke span, the completion event, and the reported
	// latency all agree on what a failed request consumed.
	errAttr := int64(0)
	if err != nil {
		errAttr = 1
	}
	if tracer != nil {
		tracer.Span("invoke", "serve", r.tid, acqEnd, acqEnd+int64(res.SimulatedExecTime),
			obs.I64("cold", coldAttr),
			obs.I64("instructions", int64(res.Instructions)),
			obs.I64("error", errAttr))
	}
	d.eng.After(overhead+res.SimulatedExecTime, func() {
		d.pool.Release(wi, d.eng.Now())
		if err != nil {
			d.noteFailure()
			if d.scheduleRetry(r, err) {
				return
			}
			d.finish(r, err)
			return
		}
		d.noteSuccess()
		d.finish(r, nil)
	})
}

// scheduleRetry arms the next attempt after a capped-exponential backoff on
// the DES clock. It reports false — leaving the caller to finish the request
// — when retries are disabled, exhausted, or the backoff would end past the
// request's deadline (which marks the request timed out).
func (d *Dispatcher) scheduleRetry(r *inflight, cause error) bool {
	if d.cfg.MaxRetries <= 0 || r.attempts > d.cfg.MaxRetries {
		return false
	}
	backoff := d.cfg.RetryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	for i := 1; i < r.attempts; i++ {
		backoff *= 2
		if d.cfg.RetryBackoffCap > 0 && backoff >= d.cfg.RetryBackoffCap {
			backoff = d.cfg.RetryBackoffCap
			break
		}
	}
	now := d.eng.Now()
	if r.deadline > 0 && now+des.Time(backoff) > r.deadline {
		r.timedOut = true
		return false
	}
	d.mu.Lock()
	atomic.AddInt64(&d.stats.Retries, 1)
	d.obsRetries.Inc()
	tracer := d.obsTracer
	d.mu.Unlock()
	r.retryWait += backoff
	if tracer != nil {
		tracer.Span("retry-wait", "serve", r.tid, int64(now), int64(now)+int64(backoff),
			obs.I64("attempt", int64(r.attempts)))
	}
	d.eng.After(backoff, func() { d.attempt(r) })
	return true
}

// finish settles a request's final outcome: it releases the concurrency
// slot, lands the terminal counter, records latency (success or failure),
// invokes the callback, and drains freed capacity into the queue.
func (d *Dispatcher) finish(r *inflight, err error) {
	now := d.eng.Now()
	latency := r.queueWait + time.Duration(now-r.started)
	if r.timedOut {
		err = fmt.Errorf("%w after %d attempts: %w", ErrRequestTimeout, r.attempts, err)
	}
	d.mu.Lock()
	d.busy--
	if err != nil {
		atomic.AddInt64(&d.stats.Failed, 1)
		d.obsFailed.Inc()
		if r.timedOut {
			atomic.AddInt64(&d.stats.TimedOut, 1)
			d.obsTimedOut.Inc()
		}
	} else {
		atomic.AddInt64(&d.stats.Completed, 1)
		d.obsCompleted.Inc()
	}
	d.busyA.Store(int64(d.busy))
	d.obsInFlight.Set(int64(d.busy))
	tracer := d.obsTracer
	// Breaker involvement for tail sampling: this request's failure opened
	// it, or it ran as the half-open probe. noteSuccess/noteFailure run
	// before finish, so d.brk already reflects this request's effect.
	brkInvolved := d.cfg.BreakerThreshold > 0 && d.brk != BreakerClosed
	d.mu.Unlock()
	d.obsLatencyNs.Record(int64(latency))
	sampled := false
	if tracer != nil {
		sampled = tracer.FinishTrack(r.tid, obs.TrackOutcome{
			Err:            err != nil,
			BreakerTripped: brkInvolved,
			LatencyNs:      int64(latency),
		})
	}
	r.done(RequestResult{
		Admitted:     true,
		Cold:         r.cold,
		Latency:      latency,
		QueueWait:    r.queueWait,
		RetryWait:    r.retryWait,
		Attempts:     r.attempts,
		Err:          err,
		TraceSampled: sampled,
	})
	d.drainQueue()
	d.notifyQuiesced()
}

// drainQueue dispatches queued requests into freed capacity, dropping any
// that outlived the deadline while parked. An open breaker (or an
// outstanding half-open probe) holds the queue; the half-open timer drains
// it again.
func (d *Dispatcher) drainQueue() {
	now := d.eng.Now()
	for {
		d.mu.Lock()
		// Dead heads never occupy capacity or claim the probe slot.
		if dead := d.expireHeadsLocked(now); len(dead) > 0 {
			d.mu.Unlock()
			finishAll(dead)
			continue
		}
		if d.busy >= d.cfg.MaxConcurrency || len(d.queue) == 0 || !d.breakerReadyLocked() {
			d.mu.Unlock()
			return
		}
		q := d.queue[0]
		d.queue = d.queue[1:]
		d.syncQueueLocked()
		d.markProbeLocked()
		wait := time.Duration(now - q.enqueued)
		d.mu.Unlock()
		d.start(q.done, wait, q.tid)
	}
}

// breakerReadyLocked reports whether admission may dispatch a request now:
// always with the breaker disabled or closed, never while open, and only
// while no probe is outstanding during half-open.
func (d *Dispatcher) breakerReadyLocked() bool {
	if d.cfg.BreakerThreshold <= 0 {
		return true
	}
	switch d.brk {
	case BreakerOpen:
		return false
	case BreakerHalfOpen:
		return !d.brkProbe
	}
	return true
}

// markProbeLocked claims the single half-open probe slot.
func (d *Dispatcher) markProbeLocked() {
	if d.brk == BreakerHalfOpen {
		d.brkProbe = true
	}
}

// noteSuccess records a successful attempt: the failure streak resets and a
// half-open breaker closes.
func (d *Dispatcher) noteSuccess() {
	if d.cfg.BreakerThreshold <= 0 {
		return
	}
	d.mu.Lock()
	d.brkFails = 0
	if d.brk == BreakerHalfOpen {
		d.setBreakerLocked(BreakerClosed)
	}
	d.mu.Unlock()
}

// noteFailure records a failed attempt (cold-start instantiation failure or
// invoke error): the streak grows, at BreakerThreshold consecutive failures
// the breaker opens, and any failure during half-open reopens it.
func (d *Dispatcher) noteFailure() {
	if d.cfg.BreakerThreshold <= 0 {
		return
	}
	d.mu.Lock()
	d.brkFails++
	if d.brk == BreakerHalfOpen || (d.brk == BreakerClosed && d.brkFails >= d.cfg.BreakerThreshold) {
		d.openBreakerLocked()
	}
	d.mu.Unlock()
}

// openBreakerLocked trips the breaker and arms the half-open transition on
// the DES clock; brkGen invalidates the timer if the breaker has re-opened
// since (the newer open armed its own timer).
func (d *Dispatcher) openBreakerLocked() {
	d.setBreakerLocked(BreakerOpen)
	atomic.AddInt64(&d.stats.BreakerOpens, 1)
	d.brkGen++
	gen := d.brkGen
	cooldown := d.cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 100 * time.Millisecond
	}
	d.eng.After(cooldown, func() {
		d.mu.Lock()
		if d.brk == BreakerOpen && d.brkGen == gen {
			d.setBreakerLocked(BreakerHalfOpen)
		}
		d.mu.Unlock()
		d.drainQueue()
	})
}

// setBreakerLocked moves the breaker and mirrors the transition into
// telemetry: the state gauge, the transition counter, and an instant span.
func (d *Dispatcher) setBreakerLocked(s BreakerState) {
	if d.brk == s {
		return
	}
	d.brk = s
	d.brkProbe = false
	d.brkA.Store(int64(s))
	d.obsBreakerState.Set(int64(s))
	d.obsBreakerTrans.Inc()
	if d.obsTracer != nil {
		now := int64(d.eng.Now())
		d.obsTracer.Span("breaker", "serve", 0, now, now, obs.Str("state", s.String()))
	}
}

// SetDraining flips the dispatcher's draining state. While draining, new
// submissions are rejected immediately with ErrDraining; requests already
// in flight or queued run to their normal outcome, so the admission identity
// still balances once the flush completes. Safe to call from any goroutine
// (the flag is observed at the next admission on the DES goroutine); the
// gateway sets it on SIGTERM before waiting for quiescence.
func (d *Dispatcher) SetDraining(v bool) { d.draining.Store(v) }

// Draining reports whether SetDraining(true) is in effect. A lock-free
// atomic read, safe from any goroutine.
func (d *Dispatcher) Draining() bool { return d.draining.Load() }

// Quiesced reports whether the dispatcher holds no work: nothing in flight
// and nothing queued. A lock-free atomic read, safe from any goroutine;
// under the DES contract it is authoritative only between events.
func (d *Dispatcher) Quiesced() bool {
	return d.busyA.Load() == 0 && d.qlenA.Load() == 0
}

// SetQuiesceHook registers fn to run — on the goroutine driving the DES —
// each time a settled request leaves the dispatcher with no in-flight or
// queued work. The gateway's drain path uses it to snapshot final metrics
// the moment the flush completes instead of polling.
func (d *Dispatcher) SetQuiesceHook(fn func()) {
	d.mu.Lock()
	d.quiesceHook = fn
	d.mu.Unlock()
}

// notifyQuiesced runs the quiesce hook if the dispatcher just went idle.
func (d *Dispatcher) notifyQuiesced() {
	if !d.Quiesced() {
		return
	}
	d.mu.Lock()
	fn := d.quiesceHook
	d.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Pool returns the dispatcher's pool.
func (d *Dispatcher) Pool() *Pool { return d.pool }

// Telemetry returns the telemetry wired by SetObserver, nil when disabled.
// Collaborators (the load generator) resolve their own handles from it; all
// obs accessors are nil-safe, so callers need no nil check of their own.
func (d *Dispatcher) Telemetry() *obs.Telemetry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tele
}

// QueueLen returns the number of requests currently parked. A lock-free
// atomic read: safe — and cheap enough for per-request use — from any
// goroutine while a simulation runs.
func (d *Dispatcher) QueueLen() int { return int(d.qlenA.Load()) }

// InFlight returns the number of requests currently executing (or backing
// off between retries). A lock-free atomic read, safe from any goroutine
// while a simulation runs.
func (d *Dispatcher) InFlight() int { return int(d.busyA.Load()) }

// BreakerState returns the circuit breaker's current position. A lock-free
// atomic read, safe from any goroutine while a simulation runs.
func (d *Dispatcher) BreakerState() BreakerState {
	return BreakerState(d.brkA.Load())
}

// Stats returns a snapshot of the outcome counters without taking the
// dispatcher lock: each counter is an independent atomic read, so a scrape
// never contends with the dispatch path. Counters written by the same event
// are not read as one transaction, but the conservation identity still
// holds exactly whenever the dispatcher is between events (and always after
// a drain), which is when callers assert it.
func (d *Dispatcher) Stats() DispatcherStats {
	return DispatcherStats{
		Submitted:            atomic.LoadInt64(&d.stats.Submitted),
		Completed:            atomic.LoadInt64(&d.stats.Completed),
		Rejected:             atomic.LoadInt64(&d.stats.Rejected),
		Expired:              atomic.LoadInt64(&d.stats.Expired),
		Failed:               atomic.LoadInt64(&d.stats.Failed),
		Retries:              atomic.LoadInt64(&d.stats.Retries),
		TimedOut:             atomic.LoadInt64(&d.stats.TimedOut),
		BreakerOpens:         atomic.LoadInt64(&d.stats.BreakerOpens),
		BreakerShortCircuits: atomic.LoadInt64(&d.stats.BreakerShortCircuits),
	}
}

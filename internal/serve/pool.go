// Package serve is an in-process Wasm function gateway: warm instance pools
// that amortize the per-engine cold-start cost the paper measures, a request
// dispatcher with bounded queues and admission control, and a deterministic
// open-loop load generator driven by the discrete-event simulator. It turns
// the repository from a system that only *boots* containers into one that
// serves sustained request traffic, making the cold-start/warm-reuse
// trade-off of standalone Wasm runtimes directly measurable with the same
// engine profiles and memory accounting the density experiments use.
package serve

import (
	"fmt"
	"sync"
	"time"

	"wasmcontainers/internal/des"
	"wasmcontainers/internal/engine"
	"wasmcontainers/internal/obs"
	"wasmcontainers/internal/wasm/exec"
)

// Config shapes one warm pool.
type Config struct {
	// Size is the number of warm instances the pool keeps ready. Instances
	// created by cold-start fallbacks are recycled into the pool only while
	// it holds fewer than Size idle instances; Size 0 therefore means
	// cold-only serving.
	Size int
	// IdleTTL evicts warm instances that have sat idle this long in
	// simulated time; 0 keeps them forever. Eviction keeps pool memory
	// honest in the same accounting the density experiments read.
	IdleTTL time.Duration
}

// Stats counts pool traffic.
type Stats struct {
	// WarmHits is the number of Acquire calls served from the pool.
	WarmHits int64
	// ColdStarts is the number of dry-pool fallback instantiations.
	ColdStarts int64
	// Recycled counts instances returned to the pool after a request.
	Recycled int64
	// Discarded counts instances dropped at release because the pool was
	// already full (Size instances idle).
	Discarded int64
	// Evicted counts idle instances dropped by the TTL sweep.
	Evicted int64
	// ResetPages counts the dirty pages copied back by Release's
	// copy-on-write resets: the total reset work, proportional to pages
	// touched by requests rather than to memory size.
	ResetPages int64
}

// WarmInstance is one pooled (or cold-started) live instance. It must be
// used by one request at a time; the pool hands it out exclusively between
// Acquire/ColdStart and Release. Instances hold no private reset snapshot:
// all instances of the pool's module alias one shared baseline image, and
// Release copies back only the pages a request dirtied.
type WarmInstance struct {
	inst *engine.Instance
	// footprint is the accounted bytes while idle (engine per-instance state;
	// private dirty pages are zero after a reset).
	footprint int64
	// lastUsed is the simulated release time, for TTL eviction.
	lastUsed des.Time
	// cold marks instances created by a dry-pool fallback.
	cold bool
}

// Invoke calls the instance's exported function (real execution).
func (w *WarmInstance) Invoke(export string, args ...exec.Value) (engine.InvokeResult, error) {
	return w.inst.Invoke(export, args...)
}

// Cold reports whether this instance came from a cold-start fallback.
func (w *WarmInstance) Cold() bool { return w.cold }

// Pool pre-instantiates N instances of one module under one engine profile
// and recycles them across requests. It is safe for concurrent use: distinct
// warm instances own distinct stores, so many goroutines may each hold one.
type Pool struct {
	mu     sync.Mutex
	eng    *engine.Engine
	cm     *engine.CompiledModule
	cfg    Config
	idle   []*WarmInstance
	leased int

	memBytes  int64
	highWater int64
	onMem     func(int64)
	// baselineBytes is the one accounted copy of the shared baseline memory
	// image, charged when the first instance captures it (0 until then — a
	// cold-only pool that never instantiates charges no guest memory at all).
	baselineBytes int64
	// tier1Bytes is the one accounted copy of the tier-1 direct-threaded
	// artifact, synced against the module's currently published artifact at
	// instance creation and release: it appears after hotness tier-up and
	// disappears again if cache pressure evicts the artifact.
	tier1Bytes int64

	stats Stats

	// Telemetry handles, nil when observation is disabled (nil handles no-op
	// without allocating; the tracer needs an explicit nil check at span
	// call sites).
	obsWarmHits   *obs.Counter
	obsColdStarts *obs.Counter
	obsRecycled   *obs.Counter
	obsDiscarded  *obs.Counter
	obsEvicted    *obs.Counter
	obsIdle       *obs.Gauge
	obsLeased     *obs.Gauge
	obsMemBytes   *obs.Gauge
	obsResetPages *obs.Histogram
	obsTracer     *obs.Tracer
}

// SetObserver wires telemetry into the pool: warm-hit/cold-start/recycle
// counters, idle/leased/memory gauges, a reset-dirty-pages histogram, and a
// "reset" span per Release carrying the dirty-page count. Pass nil to disable
// (the default); the disabled path costs a nil check per event and no
// allocations.
func (p *Pool) SetObserver(t *obs.Telemetry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t == nil {
		p.obsWarmHits, p.obsColdStarts, p.obsRecycled = nil, nil, nil
		p.obsDiscarded, p.obsEvicted = nil, nil
		p.obsIdle, p.obsLeased, p.obsMemBytes = nil, nil, nil
		p.obsResetPages, p.obsTracer = nil, nil
		return
	}
	p.obsWarmHits = t.Counter("pool_warm_hits_total")
	p.obsColdStarts = t.Counter("pool_cold_starts_total")
	p.obsRecycled = t.Counter("pool_recycled_total")
	p.obsDiscarded = t.Counter("pool_discarded_total")
	p.obsEvicted = t.Counter("pool_evicted_total")
	p.obsIdle = t.Gauge("pool_idle_instances")
	p.obsLeased = t.Gauge("pool_leased_instances")
	p.obsMemBytes = t.Gauge("pool_memory_bytes")
	p.obsResetPages = t.Histogram("pool_reset_dirty_pages")
	p.obsTracer = t.Tracer()
	p.obsIdle.Set(int64(len(p.idle)))
	p.obsLeased.Set(int64(p.leased))
	p.obsMemBytes.Set(p.memBytes)
}

// NewPool compiles nothing itself: cm must come from eng.Compile. It
// pre-instantiates cfg.Size warm instances through the real
// engine.Instantiate path. The module's compiled-code artifact and its
// baseline memory image are each charged to pool memory exactly once: every
// instance references the same immutable ModuleCode and aliases the same
// baseline image, and is individually charged only its engine-side state
// plus the pages it has dirtied, mirroring the paper's shared-read-only-state
// accounting.
func NewPool(eng *engine.Engine, cm *engine.CompiledModule, cfg Config) (*Pool, error) {
	p := &Pool{eng: eng, cm: cm, cfg: cfg}
	p.mu.Lock()
	p.addMemLocked(cm.CodeBytes())
	p.mu.Unlock()
	for i := 0; i < cfg.Size; i++ {
		wi, err := p.newInstance(false)
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		p.idle = append(p.idle, wi)
		p.mu.Unlock()
	}
	return p, nil
}

// Engine returns the pool's engine.
func (p *Pool) Engine() *engine.Engine { return p.eng }

// TargetSize is the pool's current warm-size target.
func (p *Pool) TargetSize() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg.Size
}

// Resize retargets the warm size — the autoscaler's lever. Growing
// pre-instantiates enough idle instances (through the real engine path, not
// counted as cold starts: this is proactive warming) to bring idle + leased
// up to the new target; shrinking drops surplus idle instances immediately,
// counting them as evictions, and lets Release's recycle check enforce the
// smaller target as leases return. Returns the net instance delta applied.
func (p *Pool) Resize(n int) (int, error) {
	if n < 0 {
		n = 0
	}
	p.mu.Lock()
	p.cfg.Size = n
	delta := 0
	for len(p.idle) > n {
		wi := p.idle[len(p.idle)-1]
		p.idle = p.idle[:len(p.idle)-1]
		p.stats.Evicted++
		p.obsEvicted.Inc()
		p.addMemLocked(-wi.footprint)
		delta--
	}
	if delta < 0 {
		p.obsIdle.Set(int64(len(p.idle)))
	}
	want := n - len(p.idle) - p.leased
	p.mu.Unlock()
	for i := 0; i < want; i++ {
		wi, err := p.newInstance(false)
		if err != nil {
			return delta, err
		}
		p.mu.Lock()
		p.idle = append(p.idle, wi)
		p.obsIdle.Set(int64(len(p.idle)))
		p.mu.Unlock()
		delta++
	}
	return delta, nil
}

// newInstance instantiates and accounts one instance (not yet idle). The
// first instantiation also captures the module's baseline image, charged
// once for the pool's lifetime.
func (p *Pool) newInstance(cold bool) (*WarmInstance, error) {
	inst, err := p.eng.Instantiate(p.cm)
	if err != nil {
		return nil, err
	}
	wi := &WarmInstance{
		inst:      inst,
		footprint: inst.FootprintBytes(),
		cold:      cold,
	}
	p.mu.Lock()
	if b := p.cm.BaselineBytes(); b > p.baselineBytes {
		p.addMemLocked(b - p.baselineBytes)
		p.baselineBytes = b
	}
	p.syncTier1Locked()
	p.addMemLocked(wi.footprint)
	p.mu.Unlock()
	return wi, nil
}

// syncTier1Locked reconciles the pool's one-per-node tier-1 artifact charge
// with what the module currently publishes: a tier-up charges the artifact
// once (no matter how many instances pick it up), a cache-pressure drop
// releases it.
func (p *Pool) syncTier1Locked() {
	if b := p.cm.Tier1Bytes(); b != p.tier1Bytes {
		p.addMemLocked(b - p.tier1Bytes)
		p.tier1Bytes = b
	}
}

// addMemLocked adjusts accounted memory, tracks the high-water mark, and
// notifies the listener. Callers hold p.mu; the listener must not call back
// into the pool.
func (p *Pool) addMemLocked(delta int64) {
	p.memBytes += delta
	if p.memBytes > p.highWater {
		p.highWater = p.memBytes
	}
	if p.onMem != nil {
		p.onMem(p.memBytes)
	}
	p.obsMemBytes.Set(p.memBytes)
}

// SetMemoryListener registers fn to observe every accounted-memory change
// (and immediately with the current figure). internal/k8s uses this to
// mirror pool bytes into a node's cgroup hierarchy so pooled instances are
// kubelet-visible. fn runs with the pool lock held and must not call back
// into the pool.
func (p *Pool) SetMemoryListener(fn func(int64)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onMem = fn
	if fn != nil {
		fn(p.memBytes)
	}
}

// Acquire pops a warm instance, most-recently-used first (so the least
// recently used ones age toward the TTL). It reports false when the pool is
// dry; callers then fall back to ColdStart. now drives the lazy TTL sweep.
func (p *Pool) Acquire(now des.Time) (*WarmInstance, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.evictIdleLocked(now)
	if len(p.idle) == 0 {
		return nil, false
	}
	wi := p.idle[len(p.idle)-1]
	p.idle = p.idle[:len(p.idle)-1]
	p.leased++
	p.stats.WarmHits++
	p.obsWarmHits.Inc()
	p.obsIdle.Set(int64(len(p.idle)))
	p.obsLeased.Set(int64(p.leased))
	return wi, true
}

// ColdStart is the dry-pool fallback: a real engine.Instantiate, leased to
// the caller like an Acquire'd instance. The caller pays the engine's
// ColdStartCost in simulated latency.
func (p *Pool) ColdStart() (*WarmInstance, error) {
	wi, err := p.newInstance(true)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.leased++
	p.stats.ColdStarts++
	p.obsColdStarts.Inc()
	p.obsLeased.Set(int64(p.leased))
	p.mu.Unlock()
	return wi, nil
}

// Release returns a leased instance. Linear memory is rewound to the shared
// baseline image by copying back only the pages the request dirtied — no
// guest state survives, and reset cost scales with pages touched, not memory
// size — then the instance is recycled into the pool if it has room (fewer
// than Size idle), otherwise discarded. Pages the request privatized
// (dirtied or grew) are peak-accounted and released with the reset.
func (p *Pool) Release(wi *WarmInstance, now des.Time) {
	private := wi.inst.FootprintBytes() - wi.footprint
	resetPages := wi.inst.ResetToBaseline()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncTier1Locked()
	p.stats.ResetPages += int64(resetPages)
	p.obsResetPages.Record(int64(resetPages))
	if p.obsTracer != nil {
		p.obsTracer.Span("reset", "pool", 0, int64(now), int64(now),
			obs.I64("dirty_pages", int64(resetPages)),
			obs.I64("private_bytes", private))
	}
	if private > 0 {
		// Peak accounting for pages the request privatized, released by the
		// copy-on-write reset.
		p.addMemLocked(private)
		p.addMemLocked(-private)
	}
	p.leased--
	p.obsLeased.Set(int64(p.leased))
	wi.lastUsed = now
	if len(p.idle) < p.cfg.Size {
		wi.cold = false
		p.idle = append(p.idle, wi)
		p.stats.Recycled++
		p.obsRecycled.Inc()
		p.obsIdle.Set(int64(len(p.idle)))
		return
	}
	p.stats.Discarded++
	p.obsDiscarded.Inc()
	p.addMemLocked(-wi.footprint)
}

// EvictIdle drops idle instances whose last use is more than IdleTTL before
// now, returning how many were evicted.
func (p *Pool) EvictIdle(now des.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictIdleLocked(now)
}

func (p *Pool) evictIdleLocked(now des.Time) int {
	if p.cfg.IdleTTL <= 0 {
		return 0
	}
	cutoff := now - des.Time(p.cfg.IdleTTL)
	kept := p.idle[:0]
	evicted := 0
	for _, wi := range p.idle {
		if wi.lastUsed < cutoff {
			evicted++
			p.stats.Evicted++
			p.obsEvicted.Inc()
			p.addMemLocked(-wi.footprint)
			continue
		}
		kept = append(kept, wi)
	}
	p.idle = kept
	if evicted > 0 {
		p.obsIdle.Set(int64(len(p.idle)))
	}
	return evicted
}

// DrainIdle immediately evicts every idle instance regardless of IdleTTL —
// the memory-pressure response: idle warm capacity is the cheapest memory a
// node can reclaim before it has to start failing pods. Leased instances are
// untouched; subsequent requests fall back to cold starts until Release
// refills the pool. Returns how many instances were dropped.
func (p *Pool) DrainIdle(now des.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	evicted := len(p.idle)
	for _, wi := range p.idle {
		p.stats.Evicted++
		p.obsEvicted.Inc()
		p.addMemLocked(-wi.footprint)
	}
	p.idle = p.idle[:0]
	if evicted > 0 {
		p.obsIdle.Set(0)
		if p.obsTracer != nil {
			p.obsTracer.Span("pressure-drain", "pool", 0, int64(now), int64(now),
				obs.I64("evicted", int64(evicted)))
		}
	}
	return evicted
}

// Idle returns the number of instances currently waiting in the pool.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Leased returns the number of instances currently out serving requests.
func (p *Pool) Leased() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leased
}

// SharedCodeBytes is the one accounted copy of the compiled-module artifact
// all pool instances share.
func (p *Pool) SharedCodeBytes() int64 { return p.cm.CodeBytes() }

// SharedBaselineBytes is the one accounted copy of the baseline memory image
// all pool instances alias; 0 until a first instance has captured it.
func (p *Pool) SharedBaselineBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.baselineBytes
}

// SharedTier1Bytes is the one accounted copy of the tier-1 artifact all pool
// instances share; 0 until hotness tier-up (and again after a cache-pressure
// drop).
func (p *Pool) SharedTier1Bytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncTier1Locked()
	return p.tier1Bytes
}

// SharedArtifact names one node-shareable read-only artifact of the pool's
// module, keyed by content digest like a shared library: compiled code as
// wasm-code:<digest>, the baseline memory image as wasm-data:<digest>, and
// the tier-1 direct-threaded code as wasm-t1:<digest>.
// internal/k8s maps these as shared mappings so several pools (or container
// runtimes) of one module on a node account each artifact once.
type SharedArtifact struct {
	Name  string
	Bytes int64
}

// SharedArtifacts lists the pool's digest-keyed shared artifacts with their
// current accounted sizes. The baseline entry appears once an instance has
// been created.
func (p *Pool) SharedArtifacts() []SharedArtifact {
	arts := []SharedArtifact{
		{Name: fmt.Sprintf("wasm-code:%x", p.cm.Digest[:8]), Bytes: p.cm.CodeBytes()},
	}
	if b := p.cm.BaselineBytes(); b > 0 {
		arts = append(arts, SharedArtifact{
			Name:  fmt.Sprintf("wasm-data:%x", p.cm.Digest[:8]),
			Bytes: b,
		})
	}
	if b := p.cm.Tier1Bytes(); b > 0 {
		arts = append(arts, SharedArtifact{
			Name:  fmt.Sprintf("wasm-t1:%x", p.cm.Digest[:8]),
			Bytes: b,
		})
	}
	return arts
}

// MemoryBytes is the currently accounted pool memory (one shared compiled
// artifact, one shared baseline image, plus idle + leased instances: engine
// per-instance state and private dirty pages).
func (p *Pool) MemoryBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.memBytes
}

// HighWater is the peak accounted pool memory.
func (p *Pool) HighWater() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.highWater
}

// Stats returns a snapshot of the traffic counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Package vfs provides a small in-memory POSIX-like filesystem. It backs
// WASI preopened directories, container root filesystems, and container
// image layers throughout this repository. It is deliberately simple:
// hierarchical directories, regular files, open-file handles with
// independent cursors, and byte-accurate size accounting so the simulated
// OS can charge page-cache usage.
package vfs

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// Common filesystem errors.
var (
	ErrNotExist  = errors.New("vfs: file does not exist")
	ErrExist     = errors.New("vfs: file already exists")
	ErrNotDir    = errors.New("vfs: not a directory")
	ErrIsDir     = errors.New("vfs: is a directory")
	ErrNotEmpty  = errors.New("vfs: directory not empty")
	ErrReadOnly  = errors.New("vfs: read-only file handle")
	ErrClosed    = errors.New("vfs: file handle closed")
	ErrBadCursor = errors.New("vfs: invalid seek")
)

// Open flags, a subset of POSIX semantics.
const (
	O_RDONLY = 0
	O_WRONLY = 1
	O_RDWR   = 2
	O_CREATE = 0x40
	O_TRUNC  = 0x200
	O_APPEND = 0x400
	O_EXCL   = 0x80
)

// FileInfo describes a file or directory.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
}

type node struct {
	name     string
	dir      bool
	children map[string]*node
	data     []byte
}

// FS is an in-memory filesystem rooted at "/". All methods are safe for
// concurrent use.
type FS struct {
	mu   sync.RWMutex
	root *node
	// bytes tracks total regular-file bytes for memory accounting.
	bytes int64
}

// New creates an empty filesystem.
func New() *FS {
	return &FS{root: &node{name: "/", dir: true, children: map[string]*node{}}}
}

// TotalBytes returns the sum of all regular file sizes.
func (fs *FS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.bytes
}

// split normalizes p and returns its cleaned components.
func split(p string) []string {
	p = path.Clean("/" + p)
	if p == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(p, "/"), "/")
}

// lookup walks to the node for p. Caller holds at least the read lock.
func (fs *FS) lookup(p string) (*node, error) {
	cur := fs.root
	for _, part := range split(p) {
		if !cur.dir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		cur = next
	}
	return cur, nil
}

// lookupParent walks to the parent directory of p and returns it along with
// the final path element.
func (fs *FS) lookupParent(p string) (*node, string, error) {
	parts := split(p)
	if len(parts) == 0 {
		return nil, "", ErrExist
	}
	cur := fs.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := cur.children[part]
		if !ok {
			return nil, "", fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		if !next.dir {
			return nil, "", ErrNotDir
		}
		cur = next
	}
	return cur, parts[len(parts)-1], nil
}

// Mkdir creates a single directory.
func (fs *FS) Mkdir(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	parent.children[name] = &node{name: name, dir: true, children: map[string]*node{}}
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	cur := fs.root
	for _, part := range split(p) {
		next, ok := cur.children[part]
		if !ok {
			next = &node{name: part, dir: true, children: map[string]*node{}}
			cur.children[part] = next
		} else if !next.dir {
			return ErrNotDir
		}
		cur = next
	}
	return nil
}

// WriteFile creates or replaces a regular file with the given contents.
func (fs *FS) WriteFile(p string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	if existing, ok := parent.children[name]; ok {
		if existing.dir {
			return ErrIsDir
		}
		fs.bytes -= int64(len(existing.data))
	}
	parent.children[name] = &node{name: name, data: append([]byte(nil), data...)}
	fs.bytes += int64(len(data))
	return nil
}

// ReadFile returns a copy of the file's contents.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, ErrIsDir
	}
	return append([]byte(nil), n.data...), nil
}

// Stat returns metadata for the path.
func (fs *FS) Stat(p string) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: n.name, Size: int64(len(n.data)), IsDir: n.dir}, nil
}

// ReadDir lists directory entries in lexical order.
func (fs *FS) ReadDir(p string) ([]FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, ErrNotDir
	}
	out := make([]FileInfo, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, FileInfo{Name: c.name, Size: int64(len(c.data)), IsDir: c.dir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Remove deletes a file or empty directory.
func (fs *FS) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.lookupParent(p)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if n.dir && len(n.children) > 0 {
		return ErrNotEmpty
	}
	fs.bytes -= int64(len(n.data))
	delete(parent.children, name)
	return nil
}

// RemoveAll deletes a file or directory tree; missing paths are not errors.
func (fs *FS) RemoveAll(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.lookupParent(p)
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return nil
	}
	fs.bytes -= subtreeBytes(n)
	delete(parent.children, name)
	return nil
}

func subtreeBytes(n *node) int64 {
	total := int64(len(n.data))
	for _, c := range n.children {
		total += subtreeBytes(c)
	}
	return total
}

// CopyTree copies src (file or directory) from one filesystem into dst at
// dstPath. It is used by the snapshotter to materialize image layers.
func CopyTree(dst *FS, dstPath string, src *FS, srcPath string) error {
	info, err := src.Stat(srcPath)
	if err != nil {
		return err
	}
	if !info.IsDir {
		data, err := src.ReadFile(srcPath)
		if err != nil {
			return err
		}
		return dst.WriteFile(dstPath, data)
	}
	if err := dst.MkdirAll(dstPath); err != nil {
		return err
	}
	entries, err := src.ReadDir(srcPath)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := CopyTree(dst, path.Join(dstPath, e.Name), src, path.Join(srcPath, e.Name)); err != nil {
			return err
		}
	}
	return nil
}

// File is an open handle with its own cursor.
type File struct {
	fs     *FS
	node   *node
	pos    int64
	flags  int
	closed bool
	mu     sync.Mutex
}

// Open opens p with the given flags, creating it when O_CREATE is set.
func (fs *FS) Open(p string, flags int) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(p)
	if err != nil {
		if flags&O_CREATE == 0 {
			return nil, err
		}
		parent, name, perr := fs.lookupParent(p)
		if perr != nil {
			return nil, perr
		}
		if !parent.dir {
			return nil, ErrNotDir
		}
		n = &node{name: name}
		parent.children[name] = n
	} else {
		if flags&O_EXCL != 0 && flags&O_CREATE != 0 {
			return nil, fmt.Errorf("%w: %s", ErrExist, p)
		}
		if n.dir && flags&(O_WRONLY|O_RDWR) != 0 {
			return nil, ErrIsDir
		}
		if flags&O_TRUNC != 0 && !n.dir {
			fs.bytes -= int64(len(n.data))
			n.data = nil
		}
	}
	return &File{fs: fs, node: n, flags: flags}, nil
}

// Read implements io.Reader.
func (f *File) Read(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	if f.pos >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(b, f.node.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

// Write implements io.Writer, extending the file as needed.
func (f *File) Write(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	if f.flags&(O_WRONLY|O_RDWR) == 0 {
		return 0, ErrReadOnly
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.flags&O_APPEND != 0 {
		f.pos = int64(len(f.node.data))
	}
	end := f.pos + int64(len(b))
	if end > int64(len(f.node.data)) {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.fs.bytes += end - int64(len(f.node.data))
		f.node.data = grown
	}
	copy(f.node.data[f.pos:], b)
	f.pos = end
	return len(b), nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		f.fs.mu.RLock()
		base = int64(len(f.node.data))
		f.fs.mu.RUnlock()
	default:
		return 0, ErrBadCursor
	}
	np := base + offset
	if np < 0 {
		return 0, ErrBadCursor
	}
	f.pos = np
	return np, nil
}

// Size returns the current file size.
func (f *File) Size() int64 {
	f.fs.mu.RLock()
	defer f.fs.mu.RUnlock()
	return int64(len(f.node.data))
}

// IsDir reports whether the handle refers to a directory.
func (f *File) IsDir() bool { return f.node.dir }

// Name returns the base name of the file.
func (f *File) Name() string { return f.node.name }

// Close releases the handle.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}

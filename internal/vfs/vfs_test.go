package vfs

import (
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadFile(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/c/hello.txt", []byte("world")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a/b/c/hello.txt")
	if err != nil || string(data) != "world" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if fs.TotalBytes() != 5 {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
	// Overwrite adjusts byte accounting.
	if err := fs.WriteFile("/a/b/c/hello.txt", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytes() != 2 {
		t.Fatalf("TotalBytes after overwrite = %d", fs.TotalBytes())
	}
}

func TestPathErrors(t *testing.T) {
	fs := New()
	if _, err := fs.ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing read: %v", err)
	}
	if err := fs.WriteFile("/nodir/file", nil); !errors.Is(err, ErrNotExist) {
		t.Fatalf("write into missing dir: %v", err)
	}
	fs.MkdirAll("/d")
	if err := fs.Mkdir("/d"); !errors.Is(err, ErrExist) {
		t.Fatalf("re-mkdir: %v", err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("read dir: %v", err)
	}
	fs.WriteFile("/f", []byte("x"))
	if err := fs.MkdirAll("/f/sub"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("mkdir through file: %v", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New()
	fs.MkdirAll("/dir")
	fs.WriteFile("/dir/zebra", []byte("z"))
	fs.WriteFile("/dir/apple", []byte("aa"))
	fs.Mkdir("/dir/mid")
	entries, err := fs.ReadDir("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Name != "apple" || entries[1].Name != "mid" || entries[2].Name != "zebra" {
		t.Fatalf("entries = %+v", entries)
	}
	if !entries[1].IsDir || entries[0].Size != 2 {
		t.Fatalf("metadata wrong: %+v", entries)
	}
}

func TestRemoveSemantics(t *testing.T) {
	fs := New()
	fs.MkdirAll("/d/sub")
	fs.WriteFile("/d/sub/f", []byte("data"))
	if err := fs.Remove("/d/sub"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty: %v", err)
	}
	if err := fs.Remove("/d/sub/f"); err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytes() != 0 {
		t.Fatal("bytes leaked")
	}
	if err := fs.Remove("/d/sub"); err != nil {
		t.Fatal(err)
	}
	// RemoveAll on missing path is fine; on a tree it releases bytes.
	if err := fs.RemoveAll("/nope"); err != nil {
		t.Fatal(err)
	}
	fs.MkdirAll("/t/x")
	fs.WriteFile("/t/x/a", []byte("1234"))
	fs.WriteFile("/t/b", []byte("56"))
	if err := fs.RemoveAll("/t"); err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytes() != 0 {
		t.Fatalf("RemoveAll leaked %d bytes", fs.TotalBytes())
	}
}

func TestFileHandleReadWriteSeek(t *testing.T) {
	fs := New()
	f, err := fs.Open("/log", O_RDWR|O_CREATE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	n, err := f.Read(buf)
	if err != nil || n != 5 || string(buf) != "world" {
		t.Fatalf("read = %q (%d, %v)", buf[:n], n, err)
	}
	// EOF at end.
	if _, err := f.Read(buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	// Seek end and append.
	if pos, err := f.Seek(0, io.SeekEnd); err != nil || pos != 11 {
		t.Fatalf("seek end = %d, %v", pos, err)
	}
	f.Write([]byte("!"))
	if f.Size() != 12 {
		t.Fatalf("size = %d", f.Size())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(buf); err != ErrClosed {
		t.Fatalf("read after close: %v", err)
	}
	if err := f.Close(); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenFlags(t *testing.T) {
	fs := New()
	// O_CREATE|O_EXCL on existing file fails.
	fs.WriteFile("/x", []byte("abc"))
	if _, err := fs.Open("/x", O_CREATE|O_EXCL|O_RDWR); !errors.Is(err, ErrExist) {
		t.Fatalf("excl: %v", err)
	}
	// O_TRUNC empties the file.
	f, err := fs.Open("/x", O_RDWR|O_TRUNC)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Fatalf("size after trunc = %d", f.Size())
	}
	// Read-only handle rejects writes.
	ro, _ := fs.Open("/x", O_RDONLY)
	if _, err := ro.Write([]byte("no")); err != ErrReadOnly {
		t.Fatalf("write to ro: %v", err)
	}
	// O_APPEND always writes at end.
	f.Write([]byte("base"))
	ap, _ := fs.Open("/x", O_WRONLY|O_APPEND)
	ap.Write([]byte("+tail"))
	data, _ := fs.ReadFile("/x")
	if string(data) != "base+tail" {
		t.Fatalf("append result = %q", data)
	}
	// Opening a missing file without O_CREATE fails.
	if _, err := fs.Open("/missing", O_RDWR); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
}

func TestTwoHandlesIndependentCursors(t *testing.T) {
	fs := New()
	fs.WriteFile("/shared", []byte("0123456789"))
	a, _ := fs.Open("/shared", O_RDONLY)
	b, _ := fs.Open("/shared", O_RDONLY)
	buf := make([]byte, 3)
	a.Read(buf)
	if string(buf) != "012" {
		t.Fatalf("a read %q", buf)
	}
	b.Read(buf)
	if string(buf) != "012" {
		t.Fatalf("b read %q (cursor shared?)", buf)
	}
	a.Read(buf)
	if string(buf) != "345" {
		t.Fatalf("a second read %q", buf)
	}
}

func TestCopyTree(t *testing.T) {
	src := New()
	src.MkdirAll("/app/config")
	src.WriteFile("/app/bin", []byte("binary"))
	src.WriteFile("/app/config/settings", []byte("k=v"))
	dst := New()
	if err := CopyTree(dst, "/", src, "/"); err != nil {
		t.Fatal(err)
	}
	data, err := dst.ReadFile("/app/config/settings")
	if err != nil || string(data) != "k=v" {
		t.Fatalf("copied read = %q, %v", data, err)
	}
	// Copies are independent.
	src.WriteFile("/app/bin", []byte("changed"))
	data, _ = dst.ReadFile("/app/bin")
	if string(data) != "binary" {
		t.Fatal("copy aliases source")
	}
}

func TestPathNormalization(t *testing.T) {
	fs := New()
	fs.MkdirAll("/a/b")
	fs.WriteFile("/a/b/f", []byte("x"))
	for _, p := range []string{"/a/b/f", "a/b/f", "/a//b/f", "/a/./b/f", "/a/b/../b/f"} {
		if _, err := fs.ReadFile(p); err != nil {
			t.Errorf("path %q: %v", p, err)
		}
	}
}

// Property: writing any content then reading returns identical bytes, and
// TotalBytes tracks the sum exactly.
func TestPropertyWriteReadTotal(t *testing.T) {
	f := func(contents [][]byte) bool {
		fs := New()
		var total int64
		for i, c := range contents {
			if i >= 20 {
				break
			}
			name := "/f" + string(rune('a'+i))
			if err := fs.WriteFile(name, c); err != nil {
				return false
			}
			total += int64(len(c))
			back, err := fs.ReadFile(name)
			if err != nil || string(back) != string(c) {
				return false
			}
		}
		return fs.TotalBytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Seek+Write at arbitrary offsets extends files with zero gaps,
// like POSIX sparse writes.
func TestPropertySparseWrites(t *testing.T) {
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			payload = []byte{1}
		}
		fs := New()
		h, err := fs.Open("/sparse", O_RDWR|O_CREATE)
		if err != nil {
			return false
		}
		if _, err := h.Seek(int64(off), io.SeekStart); err != nil {
			return false
		}
		if _, err := h.Write(payload); err != nil {
			return false
		}
		data, err := fs.ReadFile("/sparse")
		if err != nil {
			return false
		}
		if len(data) != int(off)+len(payload) {
			return false
		}
		for i := 0; i < int(off); i++ {
			if data[i] != 0 {
				return false
			}
		}
		return string(data[off:]) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package wasmcontainers is a from-scratch Go reproduction of "Memory
// Efficient WebAssembly Containers" (Jansen, Kozub, Iosup, Bonetta — IPPS
// 2025): the WAMR-crun integration, every substrate it depends on (a
// WebAssembly VM, WASI, a WAT assembler, a Python-subset interpreter, an
// OCI runtime layer, containerd with runwasi shims, a miniature Kubernetes,
// and a discrete-event node simulator), and a benchmark harness that
// regenerates every table and figure of the paper's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results.
package wasmcontainers

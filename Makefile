# Convenience targets for the wasmcontainers reproduction.

GO ?= go

.PHONY: all build vet test race obs-overhead faults-smoke gateway-smoke tiers-smoke shard-smoke slo-smoke cluster-smoke bench figures results examples clean

all: build vet test race obs-overhead faults-smoke gateway-smoke tiers-smoke shard-smoke slo-smoke cluster-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

test:
	$(GO) test ./...

# Concurrency check: the serve warm pool, the dispatcher's observer
# accessors, and the obs registry/tracer are hammered from many goroutines.
# TestChaosObserversRaceFree and TestConcurrentDrawsRaceFree additionally
# poll the circuit breaker and the fault injector from 8 goroutines while a
# chaos simulation runs.
race:
	$(GO) test -race ./...

# Telemetry overhead gate: the per-request instrumentation sequence with
# telemetry disabled must not allocate. The anchored grep keeps "240
# allocs/op" from matching "0 allocs/op".
obs-overhead:
	@out=$$($(GO) test -run NONE -bench BenchmarkInvokeTelemetryDisabled \
		-benchmem -benchtime 10000x ./internal/obs/); \
	echo "$$out"; \
	if ! echo "$$out" | grep -qE '[[:space:]]0 allocs/op'; then \
		echo "obs-overhead: disabled telemetry path allocates"; exit 1; fi
	@out=$$($(GO) test -run NONE -bench 'BenchmarkAdvanceDisabled|BenchmarkAdvanceSameWindow' \
		-benchmem -benchtime 10000x ./internal/obs/tsdb/); \
	echo "$$out"; \
	n=$$(echo "$$out" | grep -cE '[[:space:]]0 allocs/op'); \
	if [ "$$n" -ne 2 ]; then \
		echo "obs-overhead: tsdb sample path allocates"; exit 1; fi

# SLO smoke: boot continuumd's gateway at dilation 0 and walk the alert
# lifecycle — healthy traffic stays silent, a 100% trap-rate fault burst
# fires the availability page (visible over /v1/slo), recovery clears it,
# and the drain re-verifies the admission identity.
slo-smoke:
	$(GO) run ./cmd/continuumd -slo-smoke

# Chaos smoke: run the full fault-injection ablation grid once. Each cell
# verifies the admission identity (Submitted == Completed+Rejected+Expired+
# Failed) and that no request stalls, so a dispatcher liveness regression
# fails this target even when unit tests miss it.
faults-smoke:
	$(GO) run ./cmd/continuum -exp faults > /dev/null

# Tier smoke: run the execution-tier ablation once. The experiment embeds
# its own gates — a tier-0-only and an eagerly tiered invoke must agree on
# results and instruction counts, hotness cells must actually tier up and
# record the artifact in cache accounting, and tiered warm p50 must improve.
tiers-smoke:
	$(GO) run ./cmd/continuum -exp tiers > /dev/null

# Gateway smoke: boot continuumd on a random loopback port, invoke a
# function over HTTP, scrape /metrics for a populated latency histogram,
# SIGTERM, and assert the drain completed with the admission identity
# intact. Exercises the real-time DES bridge end to end outside the test
# binary.
gateway-smoke:
	$(GO) run ./cmd/continuumd -smoke

# Shard smoke: boot continuumd with lazy function creation, invoke three
# distinct modules over HTTP (two created on first request), assert the
# per-module labeled router metrics appeared on /metrics, SIGTERM, and
# assert the drain completed with every shard's admission identity intact.
shard-smoke:
	$(GO) run ./cmd/continuumd -shard-smoke

# Cluster smoke: boot continuumd with three simulated nodes at dilation 0,
# invoke over HTTP, kill the node the function is placed on via
# POST /v1/cluster/nodes/{node}/fail mid-traffic, and assert the charge
# re-homed to a survivor, invokes keep returning 200, /v1/cluster reports
# the node dead, and the drain completes with the admission identity intact.
cluster-smoke:
	$(GO) run ./cmd/continuumd -cluster-smoke -dilation 0

# Run every benchmark once (tables, figures, ablations, microbenches,
# interpreter hot-loop and engine instantiate benches).
bench:
	$(GO) test -run NONE -bench=. -benchmem -benchtime 1x ./...

# Regenerate the paper's tables and figures on stdout.
figures:
	$(GO) run ./cmd/continuum -exp all

# Regenerate the committed results/ directory (txt + csv + json per experiment).
results:
	$(GO) run ./cmd/continuum -exp all -outdir results > /dev/null

examples:
	$(GO) run ./examples/density-sweep
	$(GO) run ./examples/hybrid-deployment
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/serving-throughput
	$(GO) run ./examples/standalone-wasm
	$(GO) run ./examples/startup-crossover

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt

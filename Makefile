# Convenience targets for the wasmcontainers reproduction.

GO ?= go

.PHONY: all build vet test race bench figures results examples clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

test:
	$(GO) test ./...

# Concurrency check: the serve warm pool is hammered from many goroutines.
race:
	$(GO) test -race ./...

# Run every benchmark once (tables, figures, ablations, microbenches,
# interpreter hot-loop and engine instantiate benches).
bench:
	$(GO) test -run NONE -bench=. -benchmem -benchtime 1x ./...

# Regenerate the paper's tables and figures on stdout.
figures:
	$(GO) run ./cmd/continuum -exp all

# Regenerate the committed results/ directory (txt + csv + json per experiment).
results:
	$(GO) run ./cmd/continuum -exp all -outdir results > /dev/null

examples:
	$(GO) run ./examples/density-sweep
	$(GO) run ./examples/hybrid-deployment
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/serving-throughput
	$(GO) run ./examples/standalone-wasm
	$(GO) run ./examples/startup-crossover

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt

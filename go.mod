module wasmcontainers

go 1.22
